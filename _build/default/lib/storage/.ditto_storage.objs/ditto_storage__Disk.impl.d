lib/storage/disk.ml: Ditto_sim Ditto_uarch Engine
