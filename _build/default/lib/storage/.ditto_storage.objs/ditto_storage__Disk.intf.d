lib/storage/disk.mli: Ditto_sim Ditto_uarch
