open Ditto_sim

type t = {
  kind : Ditto_uarch.Platform.disk_kind;
  channels : Engine.Resource.r;
  mutable bytes_read : int;
  mutable bytes_written : int;
}

let create _engine kind =
  let channels =
    match kind with
    | Ditto_uarch.Platform.Ssd -> Engine.Resource.create 8
    | Ditto_uarch.Platform.Hdd -> Engine.Resource.create 1
  in
  { kind; channels; bytes_read = 0; bytes_written = 0 }

(* Service-time parameters: SSD ~60us random access + 500MB/s streaming;
   HDD ~4ms seek + ~150MB/s streaming. *)
let service_time t ~bytes ~random =
  let b = float_of_int (max 0 bytes) in
  match t.kind with
  | Ditto_uarch.Platform.Ssd ->
      let base = if random then 60e-6 else 20e-6 in
      base +. (b /. 500e6)
  | Ditto_uarch.Platform.Hdd ->
      let base = if random then 4e-3 else 120e-6 in
      base +. (b /. 150e6)

let read t ~bytes ~random =
  t.bytes_read <- t.bytes_read + bytes;
  Engine.Resource.with_resource t.channels (fun () ->
      Engine.wait (service_time t ~bytes ~random))

let write t ~bytes =
  t.bytes_written <- t.bytes_written + bytes;
  Engine.Resource.with_resource t.channels (fun () ->
      Engine.wait (service_time t ~bytes ~random:false))

let bytes_read t = t.bytes_read
let bytes_written t = t.bytes_written

let reset_stats t =
  t.bytes_read <- 0;
  t.bytes_written <- 0
