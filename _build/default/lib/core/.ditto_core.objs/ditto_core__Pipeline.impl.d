lib/core/pipeline.ml: Ditto_app Ditto_gen Ditto_profile Ditto_trace Ditto_tune Ditto_util List Metrics Runner Service Spec
