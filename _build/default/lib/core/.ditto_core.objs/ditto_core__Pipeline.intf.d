lib/core/pipeline.mli: Ditto_app Ditto_profile Ditto_trace Ditto_tune Ditto_uarch Ditto_util
