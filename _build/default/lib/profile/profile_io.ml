open Ditto_util.Jsonx
module J = Ditto_util.Jsonx
module Syscall = Ditto_os.Syscall
module Spec = Ditto_app.Spec

let version = 1

(* {1 Leaf encoders} *)

let server_model_to_json = function
  | Spec.Blocking -> Str "blocking"
  | Spec.Nonblocking -> Str "nonblocking"
  | Spec.Io_multiplexing -> Str "io_multiplexing"

let server_model_of_json j =
  match to_str j with
  | "blocking" -> Spec.Blocking
  | "nonblocking" -> Spec.Nonblocking
  | "io_multiplexing" -> Spec.Io_multiplexing
  | s -> raise (Parse_error ("unknown server model " ^ s))

let client_model_to_json = function
  | Spec.Sync_client -> Str "sync"
  | Spec.Async_client -> Str "async"

let client_model_of_json j =
  match to_str j with
  | "sync" -> Spec.Sync_client
  | "async" -> Spec.Async_client
  | s -> raise (Parse_error ("unknown client model " ^ s))

let syscall_to_json k =
  Obj
    [
      ("name", Str (Syscall.name k));
      ("bytes", int (Syscall.payload_bytes k));
      ( "seconds",
        match k with Syscall.Nanosleep { seconds } -> Num seconds | _ -> Num 0.0 );
      ( "random",
        match k with Syscall.Pread { random; _ } -> Bool random | _ -> Bool false );
    ]

let syscall_of_json j =
  let bytes = to_int (member "bytes" j) in
  match to_str (member "name" j) with
  | "pread" -> Syscall.Pread { bytes; random = to_bool (member "random" j) }
  | "pwrite" -> Syscall.Pwrite { bytes }
  | "sock_read" -> Syscall.Sock_read { bytes }
  | "sock_write" -> Syscall.Sock_write { bytes }
  | "epoll_wait" -> Syscall.Epoll_wait
  | "accept" -> Syscall.Accept
  | "futex_wait" -> Syscall.Futex_wait
  | "futex_wake" -> Syscall.Futex_wake
  | "mmap" -> Syscall.Mmap { bytes }
  | "clone" -> Syscall.Clone
  | "nanosleep" -> Syscall.Nanosleep { seconds = to_float (member "seconds" j) }
  | "gettime" -> Syscall.Gettime
  | s -> raise (Parse_error ("unknown syscall " ^ s))

let int_pairs_to_json = list (pair int int)

let int_pairs_of_json j =
  List.map
    (fun p ->
      match to_list p with
      | [ a; b ] -> (to_int a, to_int b)
      | _ -> raise (Parse_error "expected pair"))
    (to_list j)

let weighted_int_to_json = list (pair int (fun f -> Num f))

let weighted_int_of_json j =
  List.map
    (fun p ->
      match to_list p with
      | [ a; b ] -> (to_int a, to_float b)
      | _ -> raise (Parse_error "expected pair"))
    (to_list j)

(* {1 Section encoders} *)

let skeleton_to_json (s : Skeleton.t) =
  Obj
    [
      ("server_model", server_model_to_json s.Skeleton.server_model);
      ("client_model", client_model_to_json s.Skeleton.client_model);
      ("worker_threads", int s.Skeleton.worker_threads);
      ("dynamic_threads", Bool s.Skeleton.dynamic_threads);
      ( "thread_classes",
        list
          (fun (c : Skeleton.thread_class) ->
            Obj
              [
                ("cluster_size", int c.Skeleton.cluster_size);
                ("long_lived", Bool c.Skeleton.long_lived);
                ("trigger", Str (match c.Skeleton.trigger with `Socket -> "socket" | `Timer -> "timer"));
              ])
          s.Skeleton.thread_classes );
      ("background", list (pair (fun n -> Str n) (fun p -> Num p)) s.Skeleton.background);
      ("request_bytes", int s.Skeleton.request_bytes);
      ("response_bytes", int s.Skeleton.response_bytes);
    ]

let skeleton_of_json j : Skeleton.t =
  {
    Skeleton.server_model = server_model_of_json (member "server_model" j);
    client_model = client_model_of_json (member "client_model" j);
    worker_threads = to_int (member "worker_threads" j);
    dynamic_threads = to_bool (member "dynamic_threads" j);
    thread_classes =
      List.map
        (fun c ->
          {
            Skeleton.cluster_size = to_int (member "cluster_size" c);
            long_lived = to_bool (member "long_lived" c);
            trigger =
              (match to_str (member "trigger" c) with
              | "timer" -> `Timer
              | _ -> `Socket);
          })
        (to_list (member "thread_classes" j));
    background =
      List.map
        (fun p ->
          match to_list p with
          | [ n; s ] -> (to_str n, to_float s)
          | _ -> raise (Parse_error "expected background pair"))
        (to_list (member "background" j));
    request_bytes = to_int (member "request_bytes" j);
    response_bytes = to_int (member "response_bytes" j);
  }

let instmix_to_json (m : Instmix.t) =
  Obj
    [
      ("insts_per_request", Num m.Instmix.insts_per_request);
      ("iform_counts", int_pairs_to_json m.Instmix.iform_counts);
      ("clusters", list (pair (list int) (fun w -> Num w)) m.Instmix.clusters);
      ("rep_mean_count", Num m.Instmix.rep_mean_count);
      ("rep_fraction", Num m.Instmix.rep_fraction);
    ]

let instmix_of_json j : Instmix.t =
  {
    Instmix.insts_per_request = to_float (member "insts_per_request" j);
    iform_counts = int_pairs_of_json (member "iform_counts" j);
    clusters =
      List.map
        (fun p ->
          match to_list p with
          | [ ids; w ] -> (List.map to_int (to_list ids), to_float w)
          | _ -> raise (Parse_error "expected cluster pair"))
        (to_list (member "clusters" j));
    rep_mean_count = to_float (member "rep_mean_count" j);
    rep_fraction = to_float (member "rep_fraction" j);
  }

let working_set_to_json (w : Working_set.t) =
  Obj
    [
      ("d_hits", int_pairs_to_json w.Working_set.d_hits);
      ("d_accesses_total", int w.Working_set.d_accesses_total);
      ("d_working_sets", weighted_int_to_json w.Working_set.d_working_sets);
      ("i_hits", int_pairs_to_json w.Working_set.i_hits);
      ("i_accesses_total", int w.Working_set.i_accesses_total);
      ("i_working_sets", weighted_int_to_json w.Working_set.i_working_sets);
      ("regular_ratio", Num w.Working_set.regular_ratio);
      ("shared_ratio", Num w.Working_set.shared_ratio);
      ("write_ratio", Num w.Working_set.write_ratio);
    ]

let working_set_of_json j : Working_set.t =
  {
    Working_set.d_hits = int_pairs_of_json (member "d_hits" j);
    d_accesses_total = to_int (member "d_accesses_total" j);
    d_working_sets = weighted_int_of_json (member "d_working_sets" j);
    i_hits = int_pairs_of_json (member "i_hits" j);
    i_accesses_total = to_int (member "i_accesses_total" j);
    i_working_sets = weighted_int_of_json (member "i_working_sets" j);
    regular_ratio = to_float (member "regular_ratio" j);
    shared_ratio = to_float (member "shared_ratio" j);
    write_ratio = to_float (member "write_ratio" j);
  }

let branches_to_json (b : Branches.t) =
  Obj
    [
      ( "sites",
        list
          (fun ((s : Branches.site), p) ->
            Obj
              [
                ("m", int s.Branches.m);
                ("n", int s.Branches.n);
                ("invert", Bool s.Branches.invert);
                ("p", Num p);
              ])
          b.Branches.sites );
      ("static_branches", int b.Branches.static_branches);
      ("branch_fraction", Num b.Branches.branch_fraction);
    ]

let branches_of_json j : Branches.t =
  {
    Branches.sites =
      List.map
        (fun s ->
          ( {
              Branches.m = to_int (member "m" s);
              n = to_int (member "n" s);
              invert = to_bool (member "invert" s);
            },
            to_float (member "p" s) ))
        (to_list (member "sites" j));
    static_branches = to_int (member "static_branches" j);
    branch_fraction = to_float (member "branch_fraction" j);
  }

let float_array_to_json a = List (Array.to_list (Array.map (fun f -> Num f) a))
let float_array_of_json j = Array.of_list (List.map to_float (to_list j))

let deps_to_json (d : Deps.t) =
  Obj
    [
      ("raw", float_array_to_json d.Deps.raw);
      ("raw_addr", float_array_to_json d.Deps.raw_addr);
      ("war", float_array_to_json d.Deps.war);
      ("waw", float_array_to_json d.Deps.waw);
      ("chase_fraction", Num d.Deps.chase_fraction);
    ]

let deps_of_json j : Deps.t =
  {
    Deps.raw = float_array_of_json (member "raw" j);
    raw_addr = float_array_of_json (member "raw_addr" j);
    war = float_array_of_json (member "war" j);
    waw = float_array_of_json (member "waw" j);
    chase_fraction = to_float (member "chase_fraction" j);
  }

let syscalls_to_json (s : Syscalls.t) =
  Obj
    [
      ( "file",
        match s.Syscalls.file with
        | None -> Null
        | Some f ->
            Obj
              [
                ("reads_per_request", Num f.Syscalls.reads_per_request);
                ("read_bytes_mean", int f.Syscalls.read_bytes_mean);
                ("random_ratio", Num f.Syscalls.random_ratio);
                ("offset_span", int f.Syscalls.offset_span);
                ("writes_per_request", Num f.Syscalls.writes_per_request);
                ("write_bytes_mean", int f.Syscalls.write_bytes_mean);
              ] );
      ("misc", list (pair syscall_to_json (fun c -> Num c)) s.Syscalls.misc);
    ]

let syscalls_of_json j : Syscalls.t =
  {
    Syscalls.file =
      (match member "file" j with
      | Null -> None
      | f ->
          Some
            {
              Syscalls.reads_per_request = to_float (member "reads_per_request" f);
              read_bytes_mean = to_int (member "read_bytes_mean" f);
              random_ratio = to_float (member "random_ratio" f);
              offset_span = to_int (member "offset_span" f);
              writes_per_request = to_float (member "writes_per_request" f);
              write_bytes_mean = to_int (member "write_bytes_mean" f);
            });
    misc =
      List.map
        (fun p ->
          match to_list p with
          | [ k; c ] -> (syscall_of_json k, to_float c)
          | _ -> raise (Parse_error "expected misc pair"))
        (to_list (member "misc" j));
  }

let rec tier_to_json (t : Tier_profile.t) =
  Obj
    [
      ("tier_name", Str t.Tier_profile.tier_name);
      ("skeleton", skeleton_to_json t.Tier_profile.skeleton);
      ("instmix", instmix_to_json t.Tier_profile.instmix);
      ("working_set", working_set_to_json t.Tier_profile.working_set);
      ("branches", branches_to_json t.Tier_profile.branches);
      ("deps", deps_to_json t.Tier_profile.deps);
      ("syscalls", syscalls_to_json t.Tier_profile.syscalls);
      ("heap_bytes", int t.Tier_profile.heap_bytes);
      ("shared_bytes", int t.Tier_profile.shared_bytes);
      ("file_bytes", int t.Tier_profile.file_bytes);
      ( "background",
        match t.Tier_profile.background with None -> Null | Some b -> tier_to_json b );
    ]

let rec tier_of_json j : Tier_profile.t =
  {
    Tier_profile.tier_name = to_str (member "tier_name" j);
    skeleton = skeleton_of_json (member "skeleton" j);
    instmix = instmix_of_json (member "instmix" j);
    working_set = working_set_of_json (member "working_set" j);
    branches = branches_of_json (member "branches" j);
    deps = deps_of_json (member "deps" j);
    syscalls = syscalls_of_json (member "syscalls" j);
    heap_bytes = to_int (member "heap_bytes" j);
    shared_bytes = to_int (member "shared_bytes" j);
    file_bytes = to_int (member "file_bytes" j);
    background =
      (match member "background" j with Null -> None | b -> Some (tier_of_json b));
  }

let dag_to_json (d : Ditto_trace.Dag.t) =
  Obj
    [
      ("entry", Str d.Ditto_trace.Dag.entry);
      ("services", list (fun s -> Str s) d.Ditto_trace.Dag.services);
      ( "edges",
        list
          (fun (e : Ditto_trace.Dag.edge) ->
            Obj
              [
                ("caller", Str e.Ditto_trace.Dag.caller);
                ("callee", Str e.Ditto_trace.Dag.callee);
                ("calls_per_request", Num e.Ditto_trace.Dag.calls_per_request);
                ("probability", Num e.Ditto_trace.Dag.probability);
                ("req_bytes", int e.Ditto_trace.Dag.req_bytes);
                ("resp_bytes", int e.Ditto_trace.Dag.resp_bytes);
              ])
          d.Ditto_trace.Dag.edges );
    ]

let dag_of_json j : Ditto_trace.Dag.t =
  {
    Ditto_trace.Dag.entry = to_str (member "entry" j);
    services = List.map to_str (to_list (member "services" j));
    edges =
      List.map
        (fun e ->
          {
            Ditto_trace.Dag.caller = to_str (member "caller" e);
            callee = to_str (member "callee" e);
            calls_per_request = to_float (member "calls_per_request" e);
            probability = to_float (member "probability" e);
            req_bytes = to_int (member "req_bytes" e);
            resp_bytes = to_int (member "resp_bytes" e);
          })
        (to_list (member "edges" j));
  }

let to_json (app : Tier_profile.app) =
  Obj
    [
      ("format", Str "ditto-profile");
      ("version", int version);
      ("app_name", Str app.Tier_profile.app_name);
      ("entry", Str app.Tier_profile.entry);
      ( "page_cache_hint",
        match app.Tier_profile.page_cache_hint with None -> Null | Some b -> int b );
      ("dag", match app.Tier_profile.dag with None -> Null | Some d -> dag_to_json d);
      ("tiers", list tier_to_json app.Tier_profile.tiers);
    ]

let of_json j : Tier_profile.app =
  (match member "format" j with
  | Str "ditto-profile" -> ()
  | _ -> raise (Parse_error "not a ditto profile"));
  let v = to_int (member "version" j) in
  if v <> version then
    raise (Parse_error (Printf.sprintf "unsupported profile version %d (have %d)" v version));
  {
    Tier_profile.app_name = to_str (member "app_name" j);
    entry = to_str (member "entry" j);
    page_cache_hint =
      (match member "page_cache_hint" j with Null -> None | b -> Some (to_int b));
    dag = (match member "dag" j with Null -> None | d -> Some (dag_of_json d));
    tiers = List.map tier_of_json (to_list (member "tiers" j));
  }

let save path app =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (J.to_string ~pretty:true (to_json app)))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      of_json (J.of_string s))
