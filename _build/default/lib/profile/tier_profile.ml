open Ditto_app

type t = {
  tier_name : string;
  skeleton : Skeleton.t;
  instmix : Instmix.t;
  working_set : Working_set.t;
  branches : Branches.t;
  deps : Deps.t;
  syscalls : Syscalls.t;
  heap_bytes : int;
  shared_bytes : int;
  file_bytes : int;
  background : t option;
}

let rec log2_ceil n = if n <= 1 then 0 else 1 + log2_ceil ((n + 1) / 2)

let rec profile ?(requests = 160) ?(warmup = 60) ?(seed = 17) (tier : Spec.tier) =
  (* Warmup: the instrumented run streams [warmup] requests first so sweep
     caches and stream cursors reach steady state; compulsory first touches
     of resident structures must not count as streaming traffic. *)
  let live = ref false in
  let mix_obs, mix_fin = Instmix.observer ~live () in
  let ws_obs, ws_fin =
    Working_set.observer ~live ~max_log2:(log2_ceil (max 4096 tier.Spec.heap_bytes)) ()
  in
  let br_obs, br_fin = Branches.observer ~live () in
  let dep_obs, dep_fin = Deps.observer ~live () in
  let sys_obs, sys_fin = Syscalls.observer ~live () in
  let seen = ref 0 in
  let gate =
    {
      Stream.null_observer with
      Stream.on_request_end =
        (fun () ->
          incr seen;
          if !seen >= warmup then live := true);
    }
  in
  Stream.drive ~tier ~requests:(warmup + requests) ~seed
    [ gate; mix_obs; ws_obs; br_obs; dep_obs; sys_obs ];
  {
    tier_name = tier.Spec.tier_name;
    skeleton = Skeleton.detect tier ~samples:32 ~seed:(seed + 1);
    instmix = mix_fin ();
    working_set = ws_fin ();
    branches = br_fin ();
    deps = dep_fin ();
    syscalls = sys_fin ();
    heap_bytes = tier.Spec.heap_bytes;
    shared_bytes = tier.Spec.shared_bytes;
    file_bytes = tier.Spec.file_bytes;
    background =
      (match tier.Spec.background_handler with
      | None -> None
      | Some bg ->
          (* Profile the timer thread's body as a pseudo-tier. *)
          let pseudo =
            { tier with Spec.handler = (fun rng _ -> bg rng); background_handler = None }
          in
          Some (profile ~requests:24 ~seed:(seed + 7) pseudo));
  }

let pp fmt t =
  Format.fprintf fmt "@[<v>tier %s:@," t.tier_name;
  Format.fprintf fmt "  skeleton: %s server, %s client, %d workers%s, %d thread classes@,"
    (Spec.server_model_name t.skeleton.Skeleton.server_model)
    (Spec.client_model_name t.skeleton.Skeleton.client_model)
    t.skeleton.Skeleton.worker_threads
    (if t.skeleton.Skeleton.dynamic_threads then " (dynamic)" else "")
    (List.length t.skeleton.Skeleton.thread_classes);
  Format.fprintf fmt "  instmix: %.0f insts/req over %d iforms in %d clusters@,"
    t.instmix.Instmix.insts_per_request
    (List.length t.instmix.Instmix.iform_counts)
    (List.length t.instmix.Instmix.clusters);
  Format.fprintf fmt "  branches: %d static sites, %.1f%% of stream@,"
    t.branches.Branches.static_branches
    (100.0 *. t.branches.Branches.branch_fraction);
  Format.fprintf fmt "  memory: regular=%.2f shared=%.3f write=%.2f chase=%.2f@,"
    t.working_set.Working_set.regular_ratio t.working_set.Working_set.shared_ratio
    t.working_set.Working_set.write_ratio t.deps.Deps.chase_fraction;
  let show_ws label ws =
    let live = List.filter (fun (_, v) -> v > 0.5) ws in
    Format.fprintf fmt "  %s:" label;
    List.iter (fun (l, v) -> Format.fprintf fmt " 2^%d=%.0f" l v) live;
    Format.fprintf fmt "@,"
  in
  show_ws "d-working-sets (A_d/req)" t.working_set.Working_set.d_working_sets;
  show_ws "i-working-sets (E_i/req)" t.working_set.Working_set.i_working_sets;
  (match t.syscalls.Syscalls.file with
  | Some f ->
      Format.fprintf fmt "  file: %.2f reads/req x %dB (%.0f%% random, span %dB), %.2f writes/req@,"
        f.Syscalls.reads_per_request f.Syscalls.read_bytes_mean
        (100. *. f.Syscalls.random_ratio) f.Syscalls.offset_span f.Syscalls.writes_per_request
  | None -> ());
  Format.fprintf fmt "@]"

type app = {
  app_name : string;
  dag : Ditto_trace.Dag.t option;
  tiers : t list;
  entry : string;
  page_cache_hint : int option;
}

let profile_app ?requests ?seed ?dag (spec : Spec.t) =
  {
    app_name = spec.Spec.app_name;
    dag;
    tiers = List.map (fun tier -> profile ?requests ?seed tier) spec.Spec.tiers;
    entry = spec.Spec.entry;
    page_cache_hint = spec.Spec.page_cache_hint;
  }
