(** Data-dependency profiler (§4.4.6) — the SDE DCFG analogue.

    Measures read-after-write, write-after-read and write-after-write
    register dependency distances over the dynamic stream, quantized into
    the paper's 11 exponential bins (1..1024; larger distances do not
    affect ILP given a finite reorder buffer). Also measures the
    pointer-chase fraction — loads whose address register is their own
    output, the serialisation that bounds memory-level parallelism. *)

val bins : int
(** 11. *)

val bin_of_distance : int -> int
(** log2 bin clamped to [0, bins-1]. *)

type t = {
  raw : float array;  (** RAW distance histogram, normalised; length [bins] *)
  raw_addr : float array;
      (** RAW distances of memory-operand address registers only: how soon
          before a load/store its address is produced — this is what bounds
          memory-level parallelism, so it is profiled (and generated)
          separately from plain data dependencies *)
  war : float array;
  waw : float array;
  chase_fraction : float;  (** pointer-chasing loads / all loads *)
}

val observer : ?live:bool ref -> unit -> Stream.observer * (unit -> t)

val sample_distance : float array -> Ditto_util.Rng.t -> int
(** Draw a distance (bin midpoint) from a normalised histogram. *)
