(** Aggregate profile of one tier: everything the generator needs, and
    nothing that reveals the original implementation — only statistical
    distributions (§4.1 "Abstraction"). *)

type t = {
  tier_name : string;
  skeleton : Skeleton.t;
  instmix : Instmix.t;
  working_set : Working_set.t;
  branches : Branches.t;
  deps : Deps.t;
  syscalls : Syscalls.t;
  heap_bytes : int;  (** observed data footprint bound *)
  shared_bytes : int;
  file_bytes : int;
  background : t option;
      (** profile of the timer-triggered background thread body, if any *)
}

val profile : ?requests:int -> ?warmup:int -> ?seed:int -> Ditto_app.Spec.tier -> t
(** Drive all profilers over the tier's request streams in one pass,
    after [warmup] unrecorded requests that bring caches and stream
    cursors to steady state. *)

val pp : Format.formatter -> t -> unit
(** Human-readable dump (the shareable artefact). *)

type app = {
  app_name : string;
  dag : Ditto_trace.Dag.t option;  (** [None] for single-tier services *)
  tiers : t list;
  entry : string;
  page_cache_hint : int option;
}

val profile_app :
  ?requests:int ->
  ?seed:int ->
  ?dag:Ditto_trace.Dag.t ->
  Ditto_app.Spec.t ->
  app
(** Profile every tier; attach the RPC dependency DAG for microservices
    (collect one with {!Ditto_trace.Collector} from a measured run). *)
