open Ditto_app
module Syscall = Ditto_os.Syscall

type file_profile = {
  reads_per_request : float;
  read_bytes_mean : int;
  random_ratio : float;
  offset_span : int;
  writes_per_request : float;
  write_bytes_mean : int;
}

type t = {
  file : file_profile option;
  misc : (Syscall.kind * float) list;
}

type misc_acc = { mutable count : int; mutable bytes : int; mutable seconds : float }

let observer ?(live = ref true) () =
  let requests = ref 0 in
  let reads = ref 0 and read_bytes = ref 0 and randoms = ref 0 and span = ref 0 in
  let writes = ref 0 and write_bytes = ref 0 in
  let misc : (string, misc_acc) Hashtbl.t = Hashtbl.create 16 in
  let misc_acc name =
    match Hashtbl.find_opt misc name with
    | Some a -> a
    | None ->
        let a = { count = 0; bytes = 0; seconds = 0.0 } in
        Hashtbl.add misc name a;
        a
  in
  let on_op op =
    if not !live then ()
    else
    match op with
    | Spec.File_read { offset; bytes; random } ->
        incr reads;
        read_bytes := !read_bytes + bytes;
        if random then incr randoms;
        span := max !span (offset + bytes)
    | Spec.File_write { bytes } ->
        incr writes;
        write_bytes := !write_bytes + bytes
    | Spec.Syscall k ->
        let a = misc_acc (Syscall.name k) in
        a.count <- a.count + 1;
        a.bytes <- a.bytes + Syscall.payload_bytes k;
        (match k with
        | Syscall.Nanosleep { seconds } -> a.seconds <- a.seconds +. seconds
        | _ -> ())
    | Spec.Compute _ | Spec.Call _ -> ()
  in
  let obs =
    {
      Stream.null_observer with
      Stream.on_op;
      on_request_end = (fun () -> if !live then incr requests);
    }
  in
  let rebuild name (a : misc_acc) =
    let mean_bytes = if a.count = 0 then 0 else a.bytes / a.count in
    match name with
    | "futex_wait" -> Some Syscall.Futex_wait
    | "futex_wake" -> Some Syscall.Futex_wake
    | "mmap" -> Some (Syscall.Mmap { bytes = mean_bytes })
    | "clone" -> Some Syscall.Clone
    | "gettime" -> Some Syscall.Gettime
    | "nanosleep" ->
        Some (Syscall.Nanosleep { seconds = a.seconds /. float_of_int (max 1 a.count) })
    | "epoll_wait" -> Some Syscall.Epoll_wait
    | "accept" -> Some Syscall.Accept
    | "pread" -> Some (Syscall.Pread { bytes = mean_bytes; random = true })
    | "pwrite" -> Some (Syscall.Pwrite { bytes = mean_bytes })
    | "sock_read" -> Some (Syscall.Sock_read { bytes = mean_bytes })
    | "sock_write" -> Some (Syscall.Sock_write { bytes = mean_bytes })
    | _ -> None
  in
  let finish () =
    let r = float_of_int (max 1 !requests) in
    let file =
      if !reads = 0 && !writes = 0 then None
      else
        Some
          {
            reads_per_request = float_of_int !reads /. r;
            read_bytes_mean = (if !reads = 0 then 0 else !read_bytes / !reads);
            random_ratio = (if !reads = 0 then 0.0 else float_of_int !randoms /. float_of_int !reads);
            offset_span = !span;
            writes_per_request = float_of_int !writes /. r;
            write_bytes_mean = (if !writes = 0 then 0 else !write_bytes / !writes);
          }
    in
    let misc_list =
      Hashtbl.fold
        (fun name a acc ->
          match rebuild name a with
          | Some kind -> (kind, float_of_int a.count /. r) :: acc
          | None -> acc)
        misc []
    in
    { file; misc = misc_list }
  in
  (obs, finish)
