open Ditto_isa

let bins = 11
let bin_of_distance d = min (bins - 1) (Ditto_util.Histogram.log2_bin (max 1 d))

type t = {
  raw : float array;
  raw_addr : float array;
  war : float array;
  waw : float array;
  chase_fraction : float;
}

let observer ?(live = ref true) () =
  let raw = Array.make bins 0 and war = Array.make bins 0 and waw = Array.make bins 0 in
  let raw_addr = Array.make bins 0 in
  let last_write = Array.make Block.num_regs (-1) in
  let last_read = Array.make Block.num_regs (-1) in
  let pos = ref 0 in
  let loads = ref 0 and chases = ref 0 in
  let on_event (ev : Block.event) =
    let temp = ev.Block.ev_temp in
    let is_mem = temp.Block.iform.Iform.mem_width > 0 in
    let p = !pos in
    incr pos;
    Array.iter
      (fun src ->
        if src >= 0 then begin
          if last_write.(src) >= 0 && !live then begin
            let d = p - last_write.(src) in
            raw.(bin_of_distance d) <- raw.(bin_of_distance d) + 1;
            if is_mem then
              raw_addr.(bin_of_distance d) <- raw_addr.(bin_of_distance d) + 1
          end;
          last_read.(src) <- p
        end)
      temp.Block.srcs;
    let dst = temp.Block.dst in
    if dst >= 0 then begin
      if last_read.(dst) >= 0 && !live then begin
        let d = p - last_read.(dst) in
        war.(bin_of_distance d) <- war.(bin_of_distance d) + 1
      end;
      if last_write.(dst) >= 0 && !live then begin
        let d = p - last_write.(dst) in
        waw.(bin_of_distance d) <- waw.(bin_of_distance d) + 1
      end;
      last_write.(dst) <- p
    end;
    if
      Iclass.is_memory_read temp.Block.iform.Iform.klass
      && ev.Block.ev_addr >= 0
      && !live
    then begin
      incr loads;
      if dst >= 0 && Array.exists (fun s -> s = dst) temp.Block.srcs then incr chases
    end
  in
  let obs = { Stream.null_observer with Stream.on_event } in
  let normalise counts =
    let total = Array.fold_left ( + ) 0 counts in
    if total = 0 then Array.make bins 0.0
    else Array.map (fun c -> float_of_int c /. float_of_int total) counts
  in
  let finish () =
    {
      raw = normalise raw;
      raw_addr =
        (let n = normalise raw_addr in
         (* no memory instructions observed: fall back to long distances so
            generated addresses never serialise artificially *)
         if Array.for_all (fun x -> x = 0.0) n then begin
           let fallback = Array.make bins 0.0 in
           fallback.(bins - 1) <- 1.0;
           fallback
         end
         else n);
      war = normalise war;
      waw = normalise waw;
      chase_fraction = (if !loads = 0 then 0.0 else float_of_int !chases /. float_of_int !loads);
    }
  in
  (obs, finish)

let sample_distance hist rng =
  let pairs = Array.to_list (Array.mapi (fun i w -> (i, w)) hist) in
  let live = List.filter (fun (_, w) -> w > 0.0) pairs in
  match live with
  | [] -> 8
  | _ ->
      let bin = Ditto_util.Dist.discrete_sample (Ditto_util.Dist.discrete live) rng in
      1 lsl bin
