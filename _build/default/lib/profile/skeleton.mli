(** Application-skeleton profiler (§4.3) — the SystemTap analogue for
    network and thread models.

    Builds per-thread call trees from observed kernel-event sequences
    (socket waits, reads/writes, timer wakeups, downstream calls), measures
    pairwise tree-edit distance, and clusters threads agglomeratively —
    the number of thread classes is unknown in advance, exactly the
    situation of §4.3.2. Each cluster is classified as long- or
    short-lived and by trigger (socket-readable vs timer), and the server
    and client network models are inferred from the blocking syscall
    pattern. *)

type thread_class = {
  cluster_size : int;
  long_lived : bool;
  trigger : [ `Socket | `Timer ];
}

type t = {
  server_model : Ditto_app.Spec.server_model;
  client_model : Ditto_app.Spec.client_model;
  worker_threads : int;
  dynamic_threads : bool;
  thread_classes : thread_class list;
  background : (string * float) list;
  request_bytes : int;
  response_bytes : int;
}

val call_tree_of_ops :
  skeleton:string list -> Ditto_app.Spec.op list -> string Ditto_util.Tree_edit.tree
(** The observable call tree of one thread activation: skeleton syscalls
    as the first children, then one child per body operation (labelled by
    its kernel-visible kind — never by application internals). *)

val detect : Ditto_app.Spec.tier -> samples:int -> seed:int -> t

val clustering_threshold : float
