(** Working-set profiler (§4.4.4, §4.4.5) — the Valgrind analogue.

    Simulates caches of every power-of-two size from one line (64B) up to
    the application's footprint over the data and instruction access
    streams, recording hits per size. Eq. 1 turns data-cache hit counts
    into the number of accesses to generate per working-set window; Eq. 2
    does the same for instruction executions (16 instructions per 64B line
    at the assumed 4B mean instruction size). Per the paper, sweeps use
    8-way caches below 1MB and 16-way at or above 1MB.

    Additionally profiles the regular-to-irregular access ratio (stride
    detection per instruction address — hardware-prefetcher sensitivity),
    the shared-data access ratio (coherence), and the write ratio. *)

type t = {
  d_hits : (int * int) list;  (** log2(bytes) -> H_d hits *)
  d_accesses_total : int;
  d_working_sets : (int * float) list;
      (** Eq. 1: log2(bytes) -> A_d accesses per request *)
  i_hits : (int * int) list;
  i_accesses_total : int;
  i_working_sets : (int * float) list;
      (** Eq. 2: log2(bytes) -> E_i instruction executions per request *)
  regular_ratio : float;
  shared_ratio : float;
  write_ratio : float;
}

val min_log2 : int
(** 6: one 64-byte line. *)

val observer : ?live:bool ref -> max_log2:int -> unit -> Stream.observer * (unit -> t)
(** [max_log2] bounds the largest simulated cache (e.g. log2 of the tier's
    heap). While [!live] is false (warmup) the sweep caches and stride
    tables update but nothing is counted — otherwise compulsory first
    touches of cache-resident structures masquerade as streaming traffic. *)

val eq1 : ?total_accesses:int -> requests:int -> (int * int) list -> (int * float) list
(** Pure Eq. 1 from hit counts (exposed for tests). [total_accesses]
    additionally assigns never-hitting (streaming) accesses to the largest
    working set. *)

val eq2 : requests:int -> (int * int) list -> (int * float) list
(** Pure Eq. 2 from i-hit counts (exposed for tests). *)
