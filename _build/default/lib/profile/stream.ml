open Ditto_app

type observer = {
  on_event : Ditto_isa.Block.event -> unit;
  on_op : Spec.op -> unit;
  on_request_end : unit -> unit;
}

let null_observer = { on_event = ignore; on_op = ignore; on_request_end = ignore }

let drive ~(tier : Spec.tier) ~requests ~seed observers =
  let rng = Ditto_util.Rng.create seed in
  let on_event ev = List.iter (fun o -> o.on_event ev) observers in
  for req = 0 to requests - 1 do
    let ops = tier.Spec.handler rng req in
    List.iter
      (fun op ->
        List.iter (fun o -> o.on_op op) observers;
        match op with
        | Spec.Compute (block, iterations) ->
            Ditto_isa.Block.iter_stream ~rng ~iterations block on_event
        | Spec.Syscall _ | Spec.File_read _ | Spec.File_write _ | Spec.Call _ -> ())
      ops;
    List.iter (fun o -> o.on_request_end ()) observers
  done
