(** Branch-behaviour profiler (§4.4.3).

    Per static conditional branch, measures the taken rate and the
    transition rate (how often the outcome flips between consecutive
    executions), quantizes both on the paper's log scale (2^-1 .. 2^-10),
    and reports the joint distribution over (m, n, majority-direction)
    bins plus the static branch count and dynamic branch fraction. *)

type site = { m : int; n : int; invert : bool }
(** A quantized behaviour bin: minority-direction rate 2^-m, transition
    rate 2^-n, [invert] when the branch is mostly taken. *)

type t = {
  sites : (site * float) list;  (** bin -> probability over static branches *)
  static_branches : int;
  branch_fraction : float;  (** conditional branches per dynamic instruction *)
}

val observer : ?live:bool ref -> unit -> Stream.observer * (unit -> t)

val quantize : taken:int -> transitions:int -> total:int -> site
(** Quantization of one branch site's counts (exposed for tests). *)

val sample_site : t -> Ditto_util.Rng.t -> site
