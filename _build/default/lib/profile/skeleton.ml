open Ditto_app
module Tree = Ditto_util.Tree_edit
module Syscall = Ditto_os.Syscall

type thread_class = {
  cluster_size : int;
  long_lived : bool;
  trigger : [ `Socket | `Timer ];
}

type t = {
  server_model : Spec.server_model;
  client_model : Spec.client_model;
  worker_threads : int;
  dynamic_threads : bool;
  thread_classes : thread_class list;
  background : (string * float) list;
  request_bytes : int;
  response_bytes : int;
}

let clustering_threshold = 0.35

let op_label = function
  | Spec.Compute _ -> "user_compute"
  | Spec.Syscall k -> Syscall.name k
  | Spec.File_read _ -> "pread"
  | Spec.File_write _ -> "pwrite"
  | Spec.Call _ -> "rpc_call"

let call_tree_of_ops ~skeleton ops =
  let skeleton_children = List.map Tree.leaf skeleton in
  let body_children =
    List.map
      (fun op ->
        match op with
        | Spec.Call _ ->
            (* An RPC nests its own socket write/read pair. *)
            Tree.node (op_label op) [ Tree.leaf "sock_write"; Tree.leaf "sock_read" ]
        | _ -> Tree.leaf (op_label op))
      ops
  in
  Tree.node "thread" (skeleton_children @ body_children)

(* The kernel-visible skeleton syscalls of one request under each server
   model — what SystemTap would see at the socket layer. *)
let skeleton_syscalls = function
  | Spec.Io_multiplexing -> [ "epoll_wait"; "sock_read"; "sock_write" ]
  | Spec.Blocking -> [ "sock_read"; "sock_write" ]
  | Spec.Nonblocking -> [ "sock_poll"; "sock_read"; "sock_write" ]

let infer_server_model trees =
  let has label (Tree.Node (_, children)) =
    List.exists (fun (Tree.Node (l, _)) -> l = label) children
  in
  match trees with
  | [] -> Spec.Io_multiplexing
  | tree :: _ ->
      if has "epoll_wait" tree then Spec.Io_multiplexing
      else if has "sock_poll" tree then Spec.Nonblocking
      else Spec.Blocking

let detect (tier : Spec.tier) ~samples ~seed =
  let rng = Ditto_util.Rng.create seed in
  let skeleton = skeleton_syscalls tier.Spec.server_model in
  (* Sample activations: each worker thread observed across several
     requests, plus any timer-triggered background threads. *)
  let worker_trees =
    List.concat_map
      (fun _worker ->
        List.init (max 1 (samples / max 1 tier.Spec.thread_model.Spec.workers)) (fun req ->
            (`Worker, call_tree_of_ops ~skeleton (tier.Spec.handler rng req))))
      (List.init tier.Spec.thread_model.Spec.workers Fun.id)
  in
  let background_trees =
    match tier.Spec.background_handler with
    | None -> []
    | Some bg ->
        List.map
          (fun (name, _period) ->
            ignore name;
            (`Background, call_tree_of_ops ~skeleton:[ "timer_wait" ] (bg rng)))
          tier.Spec.thread_model.Spec.background
  in
  let all = Array.of_list (worker_trees @ background_trees) in
  let clusters =
    Ditto_util.Cluster.agglomerative
      ~distance:(fun (_, a) (_, b) -> Tree.normalized_distance a b)
      ~threshold:clustering_threshold all
  in
  let thread_classes =
    List.map
      (fun members ->
        let timer =
          List.exists
            (fun (kind, _) -> match kind with `Background -> true | `Worker -> false)
            members
        in
        {
          cluster_size = List.length members;
          (* Long-lived: spawned once and waiting for work — true for both
             epoll workers and timer threads here; short-lived would show
             clone() per activation. *)
          long_lived = not tier.Spec.thread_model.Spec.dynamic_threads || timer;
          trigger = (if timer then `Timer else `Socket);
        })
      clusters
  in
  let server_model = infer_server_model (List.map snd worker_trees) in
  let client_model = tier.Spec.client_model in
  {
    server_model;
    client_model;
    worker_threads = tier.Spec.thread_model.Spec.workers;
    dynamic_threads = tier.Spec.thread_model.Spec.dynamic_threads;
    thread_classes;
    background = tier.Spec.thread_model.Spec.background;
    request_bytes = tier.Spec.request_bytes;
    response_bytes = tier.Spec.response_bytes;
  }
