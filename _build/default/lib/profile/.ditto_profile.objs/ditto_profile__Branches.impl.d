lib/profile/branches.ml: Block Ditto_isa Ditto_util Hashtbl List Option Stream
