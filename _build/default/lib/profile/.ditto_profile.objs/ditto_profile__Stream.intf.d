lib/profile/stream.mli: Ditto_app Ditto_isa
