lib/profile/profile_io.mli: Ditto_util Tier_profile
