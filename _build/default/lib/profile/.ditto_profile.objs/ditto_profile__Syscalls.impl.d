lib/profile/syscalls.ml: Ditto_app Ditto_os Hashtbl Spec Stream
