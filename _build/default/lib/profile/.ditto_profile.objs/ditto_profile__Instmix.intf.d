lib/profile/instmix.mli: Ditto_isa Ditto_util Stream
