lib/profile/profile_io.ml: Array Branches Deps Ditto_app Ditto_os Ditto_trace Ditto_util Fun Instmix List Printf Skeleton Syscalls Tier_profile Working_set
