lib/profile/working_set.ml: Block Ditto_isa Ditto_uarch Float Hashtbl Iclass Iform List Stream
