lib/profile/syscalls.mli: Ditto_os Stream
