lib/profile/tier_profile.ml: Branches Deps Ditto_app Ditto_trace Format Instmix List Skeleton Spec Stream Syscalls Working_set
