lib/profile/deps.ml: Array Block Ditto_isa Ditto_util Iclass Iform List Stream
