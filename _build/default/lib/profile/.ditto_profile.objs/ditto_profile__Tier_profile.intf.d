lib/profile/tier_profile.mli: Branches Deps Ditto_app Ditto_trace Format Instmix Skeleton Syscalls Working_set
