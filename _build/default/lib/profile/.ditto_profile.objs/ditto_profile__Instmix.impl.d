lib/profile/instmix.ml: Array Block Ditto_isa Ditto_util Iclass Iform List Stream
