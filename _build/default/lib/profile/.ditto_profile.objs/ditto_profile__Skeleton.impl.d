lib/profile/skeleton.ml: Array Ditto_app Ditto_os Ditto_util Fun List Spec
