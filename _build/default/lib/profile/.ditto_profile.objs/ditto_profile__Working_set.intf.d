lib/profile/working_set.mli: Stream
