lib/profile/stream.ml: Ditto_app Ditto_isa Ditto_util List Spec
