lib/profile/skeleton.mli: Ditto_app Ditto_util
