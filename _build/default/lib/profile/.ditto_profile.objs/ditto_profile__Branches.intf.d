lib/profile/branches.mli: Ditto_util Stream
