lib/profile/deps.mli: Ditto_util Stream
