(** Dynamic-instrumentation driver: replays a tier's request streams and
    feeds every user-space instruction event and every operation to a set
    of observers in a single pass.

    This is the profiling hook Ditto gets from SDE/Valgrind/SystemTap on a
    real binary. Kernel streams are deliberately not exposed at assembly
    level: "assembly-level profiling for kernel-space functions is
    unnecessary, since they can be cloned by imitating the system calls
    themselves" (§4.4) — observers see the syscalls as operations instead. *)

type observer = {
  on_event : Ditto_isa.Block.event -> unit;
  on_op : Ditto_app.Spec.op -> unit;
  on_request_end : unit -> unit;
}

val null_observer : observer
val drive : tier:Ditto_app.Spec.tier -> requests:int -> seed:int -> observer list -> unit
