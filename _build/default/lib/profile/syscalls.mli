(** System-call profiler (§4.4.1) — the SystemTap analogue.

    Records the distribution of system calls per request including their
    argument characteristics: byte counts, file-offset span and randomness
    for preads (which drive disk latency, utilisation and page-cache
    behaviour), and the per-request frequency of each auxiliary call. RPC
    sends/receives are excluded — the topology analyzer owns those. *)

type file_profile = {
  reads_per_request : float;
  read_bytes_mean : int;
  random_ratio : float;
  offset_span : int;  (** observed file footprint (max offset+bytes) *)
  writes_per_request : float;
  write_bytes_mean : int;
}

type t = {
  file : file_profile option;
  misc : (Ditto_os.Syscall.kind * float) list;
      (** reconstructed representative call -> mean invocations/request *)
}

val observer : ?live:bool ref -> unit -> Stream.observer * (unit -> t)
