open Ditto_isa
module Cache = Ditto_uarch.Cache

type t = {
  d_hits : (int * int) list;
  d_accesses_total : int;
  d_working_sets : (int * float) list;
  i_hits : (int * int) list;
  i_accesses_total : int;
  i_working_sets : (int * float) list;
  regular_ratio : float;
  shared_ratio : float;
  write_ratio : float;
}

let min_log2 = 6

(* Per the paper: 8-way below 1MB, 16-way at or above; tiny caches shrink
   associativity so capacity is exactly 2^log2 bytes. *)
let sweep_cache log2 =
  let size = 1 lsl log2 in
  let assoc = if size >= 1 lsl 20 then 16 else 8 in
  let assoc = min assoc (max 1 (size / Cache.line_bytes)) in
  Cache.create ~size_bytes:size ~assoc ()

let eq1 ?(total_accesses = 0) ~requests hits =
  let r = float_of_int (max 1 requests) in
  let sorted = List.sort compare hits in
  let rec go prev = function
    | [] -> []
    | (log2, h) :: rest ->
        let a = if log2 = min_log2 then h else h - prev in
        (log2, float_of_int (max 0 a) /. r) :: go h rest
  in
  let base = go 0 sorted in
  (* Accesses that miss even a cache as large as the application's whole
     footprint are streaming over that footprint: assign them to the
     largest working set so the clone reproduces the traffic (the paper's
     sweep extends to "the maximum memory size allocated", where such
     accesses eventually hit over a long enough run). *)
  match List.rev base with
  | [] -> []
  | (top_log2, top_a) :: rev_rest ->
      let hits_at_max = match List.rev sorted with [] -> 0 | (_, h) :: _ -> h in
      let residual = float_of_int (max 0 (total_accesses - hits_at_max)) /. r in
      List.rev ((top_log2, top_a +. residual) :: rev_rest)

let eq2 ~requests hits =
  let r = float_of_int (max 1 requests) in
  let sorted = List.sort compare hits in
  let total_accesses =
    (* H at the largest size underestimates only by compulsory misses. *)
    match List.rev sorted with [] -> 0 | (_, h) :: _ -> h
  in
  let upper =
    let rec go prev = function
      | [] -> []
      | (log2, h) :: rest ->
          if log2 = min_log2 then go h rest
          else (log2, 16.0 *. float_of_int (max 0 (h - prev)) /. r) :: go h rest
    in
    go 0 sorted
  in
  let upper_sum = List.fold_left (fun acc (_, e) -> acc +. e) 0.0 upper in
  let base = Float.max 0.0 ((16.0 *. float_of_int total_accesses /. r) -. upper_sum) in
  (min_log2, base) :: upper

type stride_entry = { mutable last : int; mutable stride : int }

let observer ?(live = ref true) ~max_log2 () =
  let max_log2 = max (min_log2 + 1) max_log2 in
  let sizes = List.init (max_log2 - min_log2 + 1) (fun i -> min_log2 + i) in
  let d_caches = List.map (fun l -> (l, sweep_cache l, ref 0)) sizes in
  let i_caches = List.map (fun l -> (l, sweep_cache l, ref 0)) sizes in
  let hit = ref false in
  let d_total = ref 0 and i_total = ref 0 in
  let writes = ref 0 and shared = ref 0 and regular = ref 0 and loads = ref 0 in
  let requests = ref 0 in
  let strides : (int, stride_entry) Hashtbl.t = Hashtbl.create 256 in
  let last_line = ref (-1) in
  let on_event (ev : Block.event) =
    (* Instruction side: one access per line transition. *)
    let line = ev.Block.ev_pc land lnot (Cache.line_bytes - 1) in
    if line <> !last_line then begin
      last_line := line;
      if !live then incr i_total;
      List.iter
        (fun (_, c, hits) ->
          Cache.access c line ~hit;
          if !hit && !live then incr hits)
        i_caches
    end;
    (* Data side. *)
    if ev.Block.ev_addr >= 0 then begin
      let klass = ev.Block.ev_temp.Block.iform.Iform.klass in
      if !live then begin
        incr d_total;
        if Iclass.is_memory_write klass then incr writes;
        if ev.Block.ev_shared then incr shared
      end;
      if Iclass.is_memory_read klass then begin
        if !live then incr loads;
        let e =
          match Hashtbl.find_opt strides ev.Block.ev_pc with
          | Some e -> e
          | None ->
              let e = { last = -1; stride = 0 } in
              Hashtbl.add strides ev.Block.ev_pc e;
              e
        in
        if e.last >= 0 then begin
          let s = ev.Block.ev_addr - e.last in
          if s = e.stride && s <> 0 then begin if !live then incr regular end
          else e.stride <- s
        end;
        e.last <- ev.Block.ev_addr
      end;
      let touch addr =
        let dline = addr land lnot (Cache.line_bytes - 1) in
        List.iter
          (fun (_, c, hits) ->
            Cache.access c dline ~hit;
            if !hit && !live then incr hits)
          d_caches
      in
      if klass = Iclass.Rep_string then begin
        (* A REP MOVS/STOS touches every line of its operand, sequentially
           — a regular (prefetch-friendly) stream. *)
        let lines = max 1 (ev.Block.ev_temp.Block.rep_count / Cache.line_bytes) in
        if !live then begin
          d_total := !d_total + (lines - 1);
          loads := !loads + (lines - 1);
          regular := !regular + (lines - 1)
        end;
        for i = 0 to lines - 1 do
          touch (ev.Block.ev_addr + (i * Cache.line_bytes))
        done
      end
      else touch ev.Block.ev_addr
    end
  in
  let obs =
    {
      Stream.null_observer with
      Stream.on_event;
      on_request_end = (fun () -> if !live then incr requests);
    }
  in
  let finish () =
    let d_hits = List.map (fun (l, _, h) -> (l, !h)) d_caches in
    let i_hits = List.map (fun (l, _, h) -> (l, !h)) i_caches in
    {
      d_hits;
      d_accesses_total = !d_total;
      d_working_sets = eq1 ~total_accesses:!d_total ~requests:!requests d_hits;
      i_hits;
      i_accesses_total = !i_total;
      i_working_sets = eq2 ~requests:!requests i_hits;
      regular_ratio = (if !loads = 0 then 0.0 else float_of_int !regular /. float_of_int !loads);
      shared_ratio = (if !d_total = 0 then 0.0 else float_of_int !shared /. float_of_int !d_total);
      write_ratio = (if !d_total = 0 then 0.0 else float_of_int !writes /. float_of_int !d_total);
    }
  in
  (obs, finish)
