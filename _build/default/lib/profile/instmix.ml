open Ditto_isa

type t = {
  insts_per_request : float;
  iform_counts : (int * int) list;
  clusters : (int list * float) list;
  rep_mean_count : float;
  rep_fraction : float;
}

let cluster_threshold = 0.8

let observer ?(live = ref true) () =
  let counts = Array.make Iform.count 0 in
  let requests = ref 0 in
  let total = ref 0 in
  let rep_insts = ref 0 and rep_bytes = ref 0 in
  let obs =
    {
      Stream.null_observer with
      Stream.on_event =
        (fun ev ->
          if !live then begin
            let iform = ev.Block.ev_temp.Block.iform in
            counts.(iform.Iform.id) <- counts.(iform.Iform.id) + 1;
            incr total;
            if iform.Iform.klass = Iclass.Rep_string then begin
              incr rep_insts;
              rep_bytes := !rep_bytes + ev.Block.ev_temp.Block.rep_count
            end
          end);
      on_request_end = (fun () -> if !live then incr requests);
    }
  in
  let finish () =
    let iform_counts =
      Array.to_list (Array.mapi (fun id c -> (id, c)) counts)
      |> List.filter (fun (_, c) -> c > 0)
    in
    let observed = List.map (fun (id, _) -> Iform.of_id id) iform_counts in
    let clusters_raw =
      Ditto_util.Cluster.agglomerative ~distance:Iform.feature_distance
        ~threshold:cluster_threshold (Array.of_list observed)
    in
    let total_f = float_of_int (max 1 !total) in
    let clusters =
      List.map
        (fun members ->
          let ids = List.map (fun (f : Iform.t) -> f.Iform.id) members in
          let weight =
            List.fold_left (fun acc id -> acc +. float_of_int counts.(id)) 0.0 ids /. total_f
          in
          (ids, weight))
        clusters_raw
    in
    {
      insts_per_request = float_of_int !total /. float_of_int (max 1 !requests);
      iform_counts;
      clusters;
      rep_mean_count =
        (if !rep_insts = 0 then 0.0 else float_of_int !rep_bytes /. float_of_int !rep_insts);
      rep_fraction = float_of_int !rep_insts /. total_f;
    }
  in
  (obs, finish)

let sample_iform t rng =
  let cluster_dist = Ditto_util.Dist.discrete (List.map (fun (ids, w) -> (ids, w)) t.clusters) in
  let ids = Ditto_util.Dist.discrete_sample cluster_dist rng in
  let weighted =
    List.map
      (fun id ->
        let c = try List.assoc id t.iform_counts with Not_found -> 0 in
        (id, float_of_int (max 1 c)))
      ids
  in
  Iform.of_id (Ditto_util.Dist.discrete_sample (Ditto_util.Dist.discrete weighted) rng)
