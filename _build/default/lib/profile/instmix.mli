(** Instruction-mix profiler (§4.4.2) — the Intel SDE analogue.

    Counts dynamic executions per iform, then clusters iforms by
    functionality / operands / port usage with hierarchical clustering so
    each cluster has similar hardware resource requirements; the generator
    samples clusters by weight and draws a representative iform. Also
    profiles the mean dynamic instructions per request and the repeat
    counts of REP-prefixed instructions. *)

type t = {
  insts_per_request : float;
  iform_counts : (int * int) list;  (** iform id -> dynamic count *)
  clusters : (int list * float) list;
      (** iform-id clusters with their aggregate probability *)
  rep_mean_count : float;  (** mean repeat count of REP-prefixed insts *)
  rep_fraction : float;  (** REP insts per dynamic instruction *)
}

val observer : ?live:bool ref -> unit -> Stream.observer * (unit -> t)
(** Returns the observer to register with {!Stream.drive} and a finaliser
    producing the profile. While [!live] is false (profiling warmup),
    events update internal state but are not counted. *)

val cluster_threshold : float
(** Feature-space distance below which iforms merge (exposed for tests). *)

val sample_iform : t -> Ditto_util.Rng.t -> Ditto_isa.Iform.t
(** Draw an iform per the profiled mix: pick a cluster by weight, then a
    member weighted by its in-cluster count. *)
