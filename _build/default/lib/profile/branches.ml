open Ditto_isa
module Histogram = Ditto_util.Histogram

type site = { m : int; n : int; invert : bool }

type t = {
  sites : (site * float) list;
  static_branches : int;
  branch_fraction : float;
}

type counts = {
  mutable total : int;
  mutable taken : int;
  mutable transitions : int;
  mutable last : bool option;
}

let quantize ~taken ~transitions ~total =
  let total = max 1 total in
  let taken_rate = float_of_int taken /. float_of_int total in
  let invert = taken_rate > 0.5 in
  let minority = if invert then 1.0 -. taken_rate else taken_rate in
  let transition_rate = float_of_int transitions /. float_of_int total in
  {
    m = Histogram.log2_bin_rate minority;
    n = Histogram.log2_bin_rate transition_rate;
    invert;
  }

let observer ?(live = ref true) () =
  let table : (int, counts) Hashtbl.t = Hashtbl.create 256 in
  let dyn_branches = ref 0 and dyn_insts = ref 0 in
  let on_event (ev : Block.event) =
    if !live then incr dyn_insts;
    match ev.Block.ev_taken with
    | None -> ()
    | Some taken when not !live ->
        (* warmup: track the outcome stream, count nothing *)
        (match Hashtbl.find_opt table ev.Block.ev_pc with
        | Some c -> c.last <- Some taken
        | None ->
            Hashtbl.add table ev.Block.ev_pc
              { total = 0; taken = 0; transitions = 0; last = Some taken })
    | Some taken ->
        incr dyn_branches;
        let c =
          match Hashtbl.find_opt table ev.Block.ev_pc with
          | Some c -> c
          | None ->
              let c = { total = 0; taken = 0; transitions = 0; last = None } in
              Hashtbl.add table ev.Block.ev_pc c;
              c
        in
        c.total <- c.total + 1;
        if taken then c.taken <- c.taken + 1;
        (match c.last with
        | Some prev when prev <> taken -> c.transitions <- c.transitions + 1
        | Some _ | None -> ());
        c.last <- Some taken
  in
  let obs = { Stream.null_observer with Stream.on_event } in
  let finish () =
    let bins = Hashtbl.create 64 in
    Hashtbl.iter
      (fun _pc c ->
        let site = quantize ~taken:c.taken ~transitions:c.transitions ~total:c.total in
        let cur = Option.value ~default:0 (Hashtbl.find_opt bins site) in
        Hashtbl.replace bins site (cur + 1))
      table;
    let static = Hashtbl.length table in
    let sites =
      Hashtbl.fold
        (fun site count acc -> (site, float_of_int count /. float_of_int (max 1 static)) :: acc)
        bins []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    {
      sites;
      static_branches = static;
      branch_fraction =
        (if !dyn_insts = 0 then 0.0 else float_of_int !dyn_branches /. float_of_int !dyn_insts);
    }
  in
  (obs, finish)

let sample_site t rng =
  match t.sites with
  | [] -> { m = 2; n = 3; invert = false }
  | sites -> Ditto_util.Dist.discrete_sample (Ditto_util.Dist.discrete sites) rng
