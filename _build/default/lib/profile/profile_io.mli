(** Profile serialisation — the artefact a provider actually shares.

    Ditto's whole point (§4.1 "Abstraction", §7.2) is that the profile can
    leave the owner's hands: it contains only statistical distributions
    (mix clusters, working-set histograms, quantized branch bins, syscall
    counts, the RPC DAG) and never code, data, or addresses of the original.
    This module round-trips {!Tier_profile.app} through a stable JSON
    format, so a consumer can regenerate the clone with
    {!Ditto_gen.Clone.synth_app} from the file alone. *)

val version : int

val to_json : Tier_profile.app -> Ditto_util.Jsonx.t
val of_json : Ditto_util.Jsonx.t -> Tier_profile.app
(** Raises [Ditto_util.Jsonx.Parse_error] on malformed or
    version-incompatible input. *)

val save : string -> Tier_profile.app -> unit
(** Write to a file (pretty-printed JSON). *)

val load : string -> Tier_profile.app
