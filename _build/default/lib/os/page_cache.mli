(** OS page cache: LRU over 4KB pages.

    File reads that hit here cost only kernel copy work; misses go to the
    disk device. Configuring a small cache relative to the dataset is what
    makes MongoDB disk-bound in the paper's setup (40GB data, uniform
    access). *)

type t

val page_bytes : int

val create : capacity_bytes:int -> t

val read : t -> offset:int -> bytes:int -> int
(** Touch the pages of the byte range [offset, offset+bytes); returns how
    many bytes must be fetched from disk (missed pages; they are inserted,
    evicting LRU pages). *)

val lookups : t -> int
val misses : t -> int
val hit_rate : t -> float
val reset_stats : t -> unit
val flush : t -> unit
