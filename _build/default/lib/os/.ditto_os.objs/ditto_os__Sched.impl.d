lib/os/sched.ml: Array Ditto_sim Engine Float
