lib/os/page_cache.mli:
