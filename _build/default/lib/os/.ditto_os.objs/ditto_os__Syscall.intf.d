lib/os/syscall.mli: Ditto_isa
