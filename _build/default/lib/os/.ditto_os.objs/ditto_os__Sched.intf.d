lib/os/sched.mli: Ditto_sim
