lib/os/page_cache.ml: Hashtbl
