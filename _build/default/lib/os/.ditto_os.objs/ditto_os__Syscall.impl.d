lib/os/syscall.ml: Block Ditto_isa Ditto_util Hashtbl Iform List Printf
