open Ditto_sim

type t = {
  cores : Engine.Resource.r;
  last_thread : int array;
  mutable next_slot : int;
  quantum : float;
  ctx_cost : float;
  mutable switches : int;
  mutable busy : float;
}

let create _engine ~ncores ?(quantum = 1e-3) ?(ctx_switch_cost = 3e-6) () =
  {
    cores = Engine.Resource.create (max 1 ncores);
    last_thread = Array.make (max 1 ncores) (-1);
    next_slot = 0;
    quantum;
    ctx_cost = ctx_switch_cost;
    switches = 0;
    busy = 0.0;
  }

let ncores t = Engine.Resource.capacity t.cores

let run_oncpu t ~thread seconds =
  let remaining = ref seconds in
  while !remaining > 0.0 do
    Engine.Resource.acquire t.cores;
    (* Approximate core identity round-robin for switch accounting. *)
    let slot = t.next_slot mod Array.length t.last_thread in
    t.next_slot <- t.next_slot + 1;
    let cost =
      if t.last_thread.(slot) <> thread then begin
        t.last_thread.(slot) <- thread;
        t.switches <- t.switches + 1;
        t.ctx_cost
      end
      else 0.0
    in
    let slice = Float.min t.quantum !remaining in
    Engine.wait (slice +. cost);
    t.busy <- t.busy +. slice +. cost;
    remaining := !remaining -. slice;
    Engine.Resource.release t.cores
  done

let context_switches t = t.switches
let busy_seconds t = t.busy
let runnable t = Engine.Resource.queue_length t.cores
