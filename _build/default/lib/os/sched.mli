(** Time-sliced multi-core scheduler (CFS-like) for the DES phase.

    Threads claim a core for quantum-sized slices, paying a context-switch
    cost when a core changes thread; queueing delay under load and the
    latency knee near saturation emerge from this contention. Core counts
    and frequency come from the platform (Fig. 11 sweeps both). *)

type t

val create :
  Ditto_sim.Engine.t -> ncores:int -> ?quantum:float -> ?ctx_switch_cost:float -> unit -> t

val ncores : t -> int

val run_oncpu : t -> thread:int -> float -> unit
(** Consume the given CPU seconds, acquiring/releasing cores in slices;
    blocks the calling process until the work is done. *)

val context_switches : t -> int
val busy_seconds : t -> float
val runnable : t -> int
(** Threads currently queued waiting for a core. *)
