let page_bytes = 4096

(* Doubly-linked LRU list over page ids, with a hashtable index. *)
type node = { page : int; mutable prev : node option; mutable next : node option }

type t = {
  capacity : int; (* pages *)
  index : (int, node) Hashtbl.t;
  mutable head : node option; (* most recent *)
  mutable tail : node option; (* least recent *)
  mutable size : int;
  mutable lookups : int;
  mutable misses : int;
}

let create ~capacity_bytes =
  {
    capacity = max 1 (capacity_bytes / page_bytes);
    index = Hashtbl.create 4096;
    head = None;
    tail = None;
    size = 0;
    lookups = 0;
    misses = 0;
  }

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.index n.page;
      t.size <- t.size - 1

let touch_page t page =
  t.lookups <- t.lookups + 1;
  match Hashtbl.find_opt t.index page with
  | Some n ->
      unlink t n;
      push_front t n;
      true
  | None ->
      t.misses <- t.misses + 1;
      if t.size >= t.capacity then evict_lru t;
      let n = { page; prev = None; next = None } in
      Hashtbl.add t.index page n;
      push_front t n;
      t.size <- t.size + 1;
      false

let read t ~offset ~bytes =
  if bytes <= 0 then 0
  else begin
    let first = offset / page_bytes in
    let last = (offset + bytes - 1) / page_bytes in
    let missed = ref 0 in
    for p = first to last do
      if not (touch_page t p) then incr missed
    done;
    !missed * page_bytes
  end

let lookups t = t.lookups
let misses t = t.misses

let hit_rate t =
  if t.lookups = 0 then 0.0 else 1.0 -. (float_of_int t.misses /. float_of_int t.lookups)

let reset_stats t =
  t.lookups <- 0;
  t.misses <- 0

let flush t =
  Hashtbl.reset t.index;
  t.head <- None;
  t.tail <- None;
  t.size <- 0
