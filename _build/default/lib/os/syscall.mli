(** System calls and their kernel-side work.

    Cloud services spend a large fraction of their cycles in the kernel
    (§3.3.2); Ditto clones kernel behaviour "by imitating the system calls
    themselves" (§4.4). Here each syscall kind maps to a synthetic kernel
    instruction stream (path length, instruction footprint, and a data-copy
    component proportional to the byte count) that the core model executes
    — so kernel time, kernel i-cache pollution and user/kernel interference
    emerge from simulation rather than being a fixed cost. *)

type kind =
  | Pread of { bytes : int; random : bool }
  | Pwrite of { bytes : int }
  | Sock_read of { bytes : int }
  | Sock_write of { bytes : int }
  | Epoll_wait
  | Accept
  | Futex_wait
  | Futex_wake
  | Mmap of { bytes : int }
  | Clone
  | Nanosleep of { seconds : float }
  | Gettime

val name : kind -> string
(** Constructor name without arguments (profiling key). *)

val payload_bytes : kind -> int
(** Byte count argument, 0 for argument-less calls. *)

val path_insts : kind -> int
(** Nominal kernel path length in instructions (before scaling and
    excluding the copy component). *)

val is_blocking : kind -> bool
(** Whether the call can block the thread off-CPU (epoll/futex-wait/
    nanosleep/accept); used by the skeleton profiler. *)

module Kernel : sig
  val streams : ?scale:float -> kind -> (Ditto_isa.Block.t * int) list
  (** The kernel instruction stream for one invocation, as (block,
      iterations) pairs ready for {!Ditto_uarch.Core_model.exec_block}.
      [scale] shrinks path lengths for fast simulation (default 0.25);
      results are memoised per (kind bucket, scale). *)

  val housekeeping : ?scale:float -> unit -> Ditto_isa.Block.t * int
  (** Timer-tick/RCU-style background kernel work that pollutes the i-cache
      and branch predictor between sparse requests — the reason services
      show poor frontend behaviour at low load (Fig. 5). *)
end
