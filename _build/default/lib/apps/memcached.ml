open Ditto_isa
open Ditto_app
module Rng = Ditto_util.Rng

let items = 10_000
let value_bytes = 4096

let spec_gen ~keys ~value_bytes () =
  let space = Layout.space ~tier_index:0 ~heap_bytes:(64 * 1024 * 1024) ~shared_bytes:(1 lsl 20) in
  let value_arena = Layout.sub_heap space ~offset:0 ~bytes:(items * value_bytes) in
  let hash_table = Layout.sub_heap space ~offset:(48 * 1024 * 1024) ~bytes:(2 * 1024 * 1024) in
  let conn_buffers = Layout.sub_heap space ~offset:(52 * 1024 * 1024) ~bytes:(256 * 1024) in
  let rng = Rng.create 0x3C in
  let parse =
    Body_builder.build ~rng ~code_base:(Layout.code_window space ~index:0) ~label:"mc_parse"
      ~insts:700
      {
        Body_builder.default_profile with
        Body_builder.w_branch = 0.20;
        w_crc = 0.02;
        branch_m = (1, 4);
        branch_n = (2, 5);
        load_patterns =
          [ (Block.Seq_stride { region = conn_buffers; start = 0; stride = 64; span = 65536 }, 1.0) ];
        store_patterns =
          [ (Block.Seq_stride { region = conn_buffers; start = 0; stride = 64; span = 65536 }, 1.0) ];
      }
  in
  let hash_key =
    Body_builder.build ~rng ~code_base:(Layout.code_window space ~index:2) ~label:"mc_hash"
      ~insts:150
      { Body_builder.default_profile with Body_builder.w_crc = 0.25; w_load = 0.10; chain = 0.5 }
  in
  let probe =
    Body_builder.chase_block ~code_base:(Layout.code_window space ~index:3) ~label:"mc_probe"
      ~region:hash_table ~span:(2 * 1024 * 1024) ~hops:5
  in
  let lru =
    Body_builder.build ~rng ~code_base:(Layout.code_window space ~index:4) ~label:"mc_lru"
      ~insts:140
      {
        Body_builder.default_profile with
        Body_builder.w_lock = 0.06;
        w_store = 0.18;
        store_patterns =
          [ (Block.Rand_uniform { region = space.Layout.shared; start = 0; span = 1 lsl 18 }, 1.0) ];
        load_patterns =
          [ (Block.Rand_uniform { region = space.Layout.shared; start = 0; span = 1 lsl 18 }, 1.0) ];
      }
  in
  let respond =
    Body_builder.copy_block ~code_base:(Layout.code_window space ~index:5) ~label:"mc_value_copy"
      ~src:(Block.Rand_uniform { region = value_arena; start = 0; span = items * 4096 })
      ~bytes:value_bytes
  in
  let handler _rng _req =
    Spec.Compute (parse, 2)
    :: List.concat
         (List.init keys (fun _ ->
              [
                Spec.Compute (hash_key, 1);
                Spec.Compute (probe, 1);
                Spec.Compute (lru, 1);
                Spec.Compute (respond, 1);
              ]))
  in
  Spec.make ~name:"memcached"
    [
      Spec.tier ~name:"memcached" ~server_model:Spec.Io_multiplexing ~workers:4
        ~request_bytes:(64 + (32 * keys))
        ~response_bytes:(keys * value_bytes)
        ~heap_bytes:(64 * 1024 * 1024) ~shared_bytes:(1 lsl 20) ~handler ();
    ]

let spec () = spec_gen ~keys:1 ~value_bytes ()
let spec_multiget ~keys ~value_bytes () = spec_gen ~keys ~value_bytes ()

let workload = Ditto_loadgen.Workload.mutated
let loads = (60_000., 180_000., 320_000.)
