(** Builder for the instruction bodies of the {e original} model
    applications.

    This is deliberately separate from {!Ditto_gen} (the cloning
    generator): these blocks stand in for real compiled application code,
    with app-specific structure — hash probes, B-tree walks, string
    scanning — while the generator only ever sees their dynamic behaviour
    through the profilers. *)

type profile = {
  w_alu : float;
  w_mul : float;
  w_div : float;
  w_fp : float;
  w_simd : float;
  w_load : float;
  w_store : float;
  w_branch : float;
  w_lock : float;
  w_crc : float;
  w_lea : float;
  load_patterns : (Ditto_isa.Block.mem_pattern * float) list;
      (** sampled per load/store instruction *)
  store_patterns : (Ditto_isa.Block.mem_pattern * float) list;
  branch_m : int * int;  (** inclusive range of taken-rate exponents *)
  branch_n : int * int;
  chain : float;  (** fraction of instructions reading the previous result *)
}

val default_profile : profile
(** Balanced integer-server profile; override fields as needed. *)

val build :
  rng:Ditto_util.Rng.t ->
  code_base:int ->
  label:string ->
  insts:int ->
  profile ->
  Ditto_isa.Block.t
(** Generate a static block of [insts] templates following the profile. *)

val copy_block :
  code_base:int -> label:string -> src:Ditto_isa.Block.mem_pattern -> bytes:int -> Ditto_isa.Block.t
(** A REP MOVSB bulk copy (value/response marshalling). *)

val chase_block :
  code_base:int ->
  label:string ->
  region:Ditto_isa.Block.region ->
  span:int ->
  hops:int ->
  Ditto_isa.Block.t
(** A dependent pointer-walk of [hops] loads (hash chains, B-tree descents,
    adjacency lists) with a little key-comparison work per hop. *)
