lib/apps/hotel_reservation.ml: Block Body_builder Ditto_app Ditto_isa Ditto_loadgen Ditto_util Layout Spec
