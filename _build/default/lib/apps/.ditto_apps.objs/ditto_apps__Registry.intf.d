lib/apps/registry.mli: Ditto_app Ditto_loadgen
