lib/apps/hotel_reservation.mli: Ditto_app Ditto_loadgen
