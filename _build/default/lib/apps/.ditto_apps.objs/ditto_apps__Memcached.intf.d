lib/apps/memcached.mli: Ditto_app Ditto_loadgen
