lib/apps/stressors.ml: Block Ditto_app Ditto_isa Ditto_util Iform Lazy List Spec
