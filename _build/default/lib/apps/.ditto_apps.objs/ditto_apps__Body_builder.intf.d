lib/apps/body_builder.mli: Ditto_isa Ditto_util
