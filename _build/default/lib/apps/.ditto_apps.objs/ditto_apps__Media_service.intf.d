lib/apps/media_service.mli: Ditto_app Ditto_loadgen
