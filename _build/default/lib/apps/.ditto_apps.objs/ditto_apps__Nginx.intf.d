lib/apps/nginx.mli: Ditto_app Ditto_loadgen
