lib/apps/body_builder.ml: Block Ditto_isa Ditto_util Iform List
