lib/apps/redis.mli: Ditto_app Ditto_loadgen
