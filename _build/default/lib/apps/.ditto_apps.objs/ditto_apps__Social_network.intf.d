lib/apps/social_network.mli: Ditto_app Ditto_loadgen
