lib/apps/registry.ml: Ditto_app Ditto_loadgen Hotel_reservation List Media_service Memcached Mongodb Nginx Printf Redis Social_network
