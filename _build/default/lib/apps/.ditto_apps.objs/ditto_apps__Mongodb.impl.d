lib/apps/mongodb.ml: Block Body_builder Ditto_app Ditto_isa Ditto_loadgen Ditto_os Ditto_util Layout Spec
