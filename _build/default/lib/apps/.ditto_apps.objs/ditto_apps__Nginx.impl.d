lib/apps/nginx.ml: Array Block Body_builder Ditto_app Ditto_isa Ditto_loadgen Ditto_util Layout Printf Spec
