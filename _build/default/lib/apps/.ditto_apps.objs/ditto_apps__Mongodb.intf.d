lib/apps/mongodb.mli: Ditto_app Ditto_loadgen
