lib/apps/stressors.mli: Ditto_app Ditto_util
