(** Model of DeathStarBench's Social Network (§6.1.2): a microservice DAG
    behind an NGINX-like frontend, composed with the socfb-Reed98 Facebook
    graph (962 users, 18.8K follow edges) and driven by an open-loop
    wrk2-style client.

    Requests mix a read-home-timeline flow and a compose-post flow; the
    compose path fans out from ComposePostService to the text, id, user,
    media, storage and timeline services, with TextService further calling
    url-shorten and user-mention — giving the probabilistic call graph of
    Fig. 3. [TextService] (post text handling) and [SocialGraphService]
    (follow relationships) are the two tiers whose resource profiles Fig. 5
    reports. *)

val spec : unit -> Ditto_app.Spec.t
(** The 22-service topology: twelve application services plus their
    memcached/mongodb-style cache and store backends (DeathStarBench pairs
    each stateful service with both). *)


val workload : Ditto_loadgen.Workload.t
val loads : float * float * float
val fig6_qps : float list
(** The Fig. 6 sweep: 200..2000 QPS. *)

val graph_users : int
val graph_edges : int
