(** Model of Memcached 1.6 (§6.1.2): in-memory key-value store, four
    I/O-multiplexing worker threads, 10K items of 30B key / 4KB value,
    driven by an open-loop mutated client. Request work: protocol parse,
    key hash (CRC), hash-chain probe, LRU bookkeeping on shared data
    (lock-prefixed), and a 4KB value copy into the response. *)

val spec : unit -> Ditto_app.Spec.t
(** The §6.1.2 configuration: single-key GETs of 4KB values. *)

val spec_multiget : keys:int -> value_bytes:int -> unit -> Ditto_app.Spec.t
(** A CPU-heavier configuration (multiget of [keys] records of
    [value_bytes] each) used by the Fig. 11 power-management sweep, where
    the service must be compute-bound for cores/frequency to matter. *)

val workload : Ditto_loadgen.Workload.t

val loads : float * float * float
(** (low, medium, high) QPS for the Fig. 5 sweep on this substrate. *)
