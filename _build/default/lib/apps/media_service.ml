open Ditto_isa
open Ditto_app
module Rng = Ditto_util.Rng

let mb n = n * 1024 * 1024

(* Tier indices 36.. keep the address space disjoint from the other apps. *)
let base = 36

let spec () =
  let rng = Rng.create 0x3D1A in
  let mk_space i heap =
    Layout.space ~tier_index:(base + i) ~heap_bytes:heap ~shared_bytes:(1 lsl 18)
  in

  let fe_space = mk_space 0 (mb 16) in
  let fe_parse =
    Body_builder.build ~rng ~code_base:(Layout.code_window fe_space ~index:0) ~label:"ms_fe"
      ~insts:850
      { Body_builder.default_profile with Body_builder.w_branch = 0.22; branch_m = (1, 4) }
  in
  let frontend_handler rng _req =
    [
      Spec.Compute (fe_parse, 2);
      (if Rng.float rng 1.0 < 0.7 then
         Spec.Call { target = "PageService"; req_bytes = 256; resp_bytes = 4096 }
       else Spec.Call { target = "ComposeReviewService"; req_bytes = 1024; resp_bytes = 128 });
    ]
  in

  (* page render: gather movie info + reviews, template the page. *)
  let pg_space = mk_space 1 (mb 16) in
  let pg_template =
    Body_builder.build ~rng ~code_base:(Layout.code_window pg_space ~index:0) ~label:"ms_page"
      ~insts:900
      { Body_builder.default_profile with Body_builder.w_store = 0.16; w_simd = 0.05 }
  in
  let page_handler _rng _req =
    [
      Spec.Compute (pg_template, 1);
      Spec.Call { target = "MovieInfoService"; req_bytes = 128; resp_bytes = 2048 };
      Spec.Call { target = "ReviewStorageService"; req_bytes = 256; resp_bytes = 4096 };
      Spec.Compute (pg_template, 1);
    ]
  in

  (* compose review: text + id + rating, then store. *)
  let cr_space = mk_space 2 (mb 8) in
  let cr_text =
    Body_builder.build ~rng ~code_base:(Layout.code_window cr_space ~index:0) ~label:"ms_text"
      ~insts:700
      { Body_builder.default_profile with Body_builder.w_branch = 0.22; w_simd = 0.06 }
  in
  let compose_handler _rng _req =
    [
      Spec.Compute (cr_text, 1);
      Spec.Call { target = "UniqueIdService"; req_bytes = 64; resp_bytes = 64 };
      Spec.Call { target = "RatingService"; req_bytes = 128; resp_bytes = 64 };
      Spec.Call { target = "ReviewStorageService"; req_bytes = 1024; resp_bytes = 128 };
    ]
  in

  let uid_space = mk_space 3 (mb 2) in
  let uid_logic =
    Body_builder.build ~rng ~code_base:(Layout.code_window uid_space ~index:0) ~label:"ms_uid"
      ~insts:150
      { Body_builder.default_profile with Body_builder.w_crc = 0.1; chain = 0.4 }
  in
  let uid_handler _rng _req = [ Spec.Compute (uid_logic, 1) ] in

  (* rating: shared counters, lock-heavy updates. *)
  let rt_space = mk_space 4 (mb 8) in
  let rt_logic =
    Body_builder.build ~rng ~code_base:(Layout.code_window rt_space ~index:0) ~label:"ms_rate"
      ~insts:350
      {
        Body_builder.default_profile with
        Body_builder.w_lock = 0.05;
        store_patterns =
          [ (Block.Rand_uniform { region = rt_space.Layout.shared; start = 0; span = 1 lsl 17 }, 1.0) ];
        load_patterns =
          [ (Block.Rand_uniform { region = rt_space.Layout.shared; start = 0; span = 1 lsl 17 }, 1.0) ];
      }
  in
  let rating_handler _rng _req = [ Spec.Compute (rt_logic, 1) ] in

  (* movie info: cache-aside over a store. *)
  let mi_space = mk_space 5 (mb 8) in
  let mi_logic =
    Body_builder.build ~rng ~code_base:(Layout.code_window mi_space ~index:0) ~label:"ms_minfo"
      ~insts:400 Body_builder.default_profile
  in
  let movie_handler rng _req =
    [
      Spec.Compute (mi_logic, 1);
      Spec.Call { target = "MovieCache"; req_bytes = 128; resp_bytes = 2048 };
    ]
    @
    if Rng.float rng 1.0 < 0.2 then
      [ Spec.Call { target = "MovieDB"; req_bytes = 256; resp_bytes = 2048 } ]
    else []
  in

  (* review storage: reads fan to the store frequently (long tail of old
     reviews), writes always hit it. *)
  let rs_space = mk_space 6 (mb 8) in
  let rs_logic =
    Body_builder.build ~rng ~code_base:(Layout.code_window rs_space ~index:0) ~label:"ms_rstore"
      ~insts:500 Body_builder.default_profile
  in
  let review_handler rng _req =
    [
      Spec.Compute (rs_logic, 1);
      Spec.Call { target = "ReviewDB"; req_bytes = 512; resp_bytes = 4096 };
    ]
    @
    if Rng.float rng 1.0 < 0.3 then
      [ Spec.Call { target = "ReviewDB"; req_bytes = 512; resp_bytes = 4096 } ]
    else []
  in

  let mk_cache i label =
    let sp = mk_space i (mb 16) in
    let arena = Layout.sub_heap sp ~offset:0 ~bytes:(mb 12) in
    let logic =
      Body_builder.build ~rng ~code_base:(Layout.code_window sp ~index:0) ~label:(label ^ "_l")
        ~insts:300 Body_builder.default_profile
    in
    let copy =
      Body_builder.copy_block ~code_base:(Layout.code_window sp ~index:1) ~label:(label ^ "_c")
        ~src:(Block.Rand_uniform { region = arena; start = 0; span = mb 12 })
        ~bytes:2048
    in
    fun _rng _req -> [ Spec.Compute (logic, 1); Spec.Compute (copy, 1) ]
  in
  let mk_store i label ~dataset =
    let sp = mk_space i (mb 32) in
    let idx = Layout.sub_heap sp ~offset:0 ~bytes:(mb 24) in
    let parse =
      Body_builder.build ~rng ~code_base:(Layout.code_window sp ~index:0) ~label:(label ^ "_p")
        ~insts:500 Body_builder.default_profile
    in
    let btree =
      Body_builder.chase_block ~code_base:(Layout.code_window sp ~index:2) ~label:(label ^ "_b")
        ~region:idx ~span:(mb 24) ~hops:6
    in
    fun rng _req ->
      if Rng.float rng 1.0 < 0.75 then
        [
          Spec.Compute (parse, 1);
          Spec.Compute (btree, 1);
          Spec.File_read
            { offset = 4096 * Rng.int rng (dataset / 4096); bytes = 4096; random = true };
        ]
      else [ Spec.Compute (parse, 1); Spec.Compute (btree, 1); Spec.File_write { bytes = 4096 } ]
  in
  let t ?(workers = 2) ?(req = 256) ?(resp = 512) ?(heap = mb 16) ?(file = 0) name handler =
    Spec.tier ~name ~server_model:Spec.Io_multiplexing ~workers ~request_bytes:req
      ~response_bytes:resp ~heap_bytes:heap ~shared_bytes:(1 lsl 18) ~file_bytes:file ~handler ()
  in
  Spec.make ~name:"media_service" ~entry:"frontend"
    ~page_cache_hint:(256 * 1024 * 1024)
    [
      t "frontend" frontend_handler ~req:384 ~resp:4096;
      t "PageService" page_handler ~req:256 ~resp:4096;
      t "ComposeReviewService" compose_handler ~req:1024 ~resp:128 ~heap:(mb 8);
      t "UniqueIdService" uid_handler ~req:64 ~resp:64 ~heap:(mb 2);
      t "RatingService" rating_handler ~req:128 ~resp:64 ~heap:(mb 8);
      t "MovieInfoService" movie_handler ~req:128 ~resp:2048 ~heap:(mb 8);
      t "ReviewStorageService" review_handler ~req:512 ~resp:4096 ~heap:(mb 8);
      t "MovieCache" (mk_cache 7 "ms_mcache") ~req:128 ~resp:2048;
      t "MovieDB" (mk_store 8 "ms_mdb" ~dataset:(mb 512)) ~req:256 ~resp:2048 ~heap:(mb 32)
        ~file:(mb 512);
      t "ReviewDB" (mk_store 9 "ms_rdb" ~dataset:(1024 * 1024 * 1024)) ~workers:4 ~req:512
        ~resp:4096 ~heap:(mb 32)
        ~file:(1024 * 1024 * 1024);
    ]

let workload = Ditto_loadgen.Workload.wrk2_open
let loads = (400., 1_000., 2_000.)
