(** Model of MongoDB 4.4 (§6.1.2): document store with a 4GB on-disk
    dataset (scaled from the paper's 40GB at the same cache-to-data ratio),
    one million uniformly-read records via YCSB (closed loop). Thread per
    connection (the paper notes MongoDB's thread count follows the number
    of concurrent connections). Request work: BSON parse, B-tree descent
    over a large index, a random 4KB-page pread that usually misses the
    page cache — making the service disk-bound, and much faster on the
    SSD platform (Fig. 7). Background checkpoint thread flushes dirty
    pages periodically. *)

val spec : unit -> Ditto_app.Spec.t
val workload : Ditto_loadgen.Workload.t
val loads : float * float * float
val dataset_bytes : int
