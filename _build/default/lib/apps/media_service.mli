(** Model of DeathStarBench's Media Service — the third DSB topology,
    included (like {!Hotel_reservation}) as a pipeline-generality check
    beyond the paper's evaluated set.

    A review-centric workload: an NGINX-like frontend routes 70% page
    renders (compose a movie page from movie info, plot, cast and reviews)
    and 30% review submissions (text handling, unique id, rating update,
    storage). Review and movie data live in MongoDB-style stores behind
    memcached-style caches. Nine services. *)

val spec : unit -> Ditto_app.Spec.t
val workload : Ditto_loadgen.Workload.t
val loads : float * float * float
