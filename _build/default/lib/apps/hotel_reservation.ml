open Ditto_isa
open Ditto_app
module Rng = Ditto_util.Rng

let mb n = n * 1024 * 1024

(* Tier indices 24.. keep the address space disjoint from Social Network
   (both apps can be profiled in one process). *)
let base = 24

let spec () =
  let rng = Rng.create 0x807E1 in
  let mk_space i heap = Layout.space ~tier_index:(base + i) ~heap_bytes:heap ~shared_bytes:(1 lsl 18) in

  let fe_space = mk_space 0 (mb 16) in
  let fe_parse =
    Body_builder.build ~rng ~code_base:(Layout.code_window fe_space ~index:0) ~label:"hr_fe"
      ~insts:800
      { Body_builder.default_profile with Body_builder.w_branch = 0.22; branch_m = (1, 4) }
  in
  let frontend_handler rng _req =
    let r = Rng.float rng 1.0 in
    [
      Spec.Compute (fe_parse, 2);
      (if r < 0.60 then Spec.Call { target = "SearchService"; req_bytes = 256; resp_bytes = 2048 }
       else if r < 0.85 then
         Spec.Call { target = "RecommendationService"; req_bytes = 128; resp_bytes = 1024 }
       else Spec.Call { target = "ReservationService"; req_bytes = 512; resp_bytes = 256 });
    ]
  in

  (* search: geo filter then rate lookup, results merged. *)
  let se_space = mk_space 1 (mb 16) in
  let se_merge =
    Body_builder.build ~rng ~code_base:(Layout.code_window se_space ~index:0) ~label:"hr_search"
      ~insts:700
      { Body_builder.default_profile with Body_builder.w_fp = 0.05; w_branch = 0.18 }
  in
  let search_handler _rng _req =
    [
      Spec.Compute (se_merge, 1);
      Spec.Call { target = "GeoService"; req_bytes = 128; resp_bytes = 1024 };
      Spec.Call { target = "RateService"; req_bytes = 256; resp_bytes = 1024 };
      Spec.Compute (se_merge, 1);
    ]
  in

  (* geo: nearest-neighbour over a spatial index (pointer-heavy, fp math). *)
  let geo_space = mk_space 2 (mb 32) in
  let geo_index = Layout.sub_heap geo_space ~offset:0 ~bytes:(mb 24) in
  let geo_walk =
    Body_builder.chase_block ~code_base:(Layout.code_window geo_space ~index:0) ~label:"hr_geo_w"
      ~region:geo_index ~span:(mb 24) ~hops:7
  in
  let geo_math =
    Body_builder.build ~rng ~code_base:(Layout.code_window geo_space ~index:1) ~label:"hr_geo_m"
      ~insts:500
      { Body_builder.default_profile with Body_builder.w_fp = 0.18; w_mul = 0.06 }
  in
  let geo_handler _rng _req = [ Spec.Compute (geo_walk, 1); Spec.Compute (geo_math, 1) ] in

  (* rate: price tables, integer-heavy scans. *)
  let rate_space = mk_space 3 (mb 16) in
  let rate_tables = Layout.sub_heap rate_space ~offset:0 ~bytes:(mb 12) in
  let rate_scan =
    Body_builder.build ~rng ~code_base:(Layout.code_window rate_space ~index:0) ~label:"hr_rate"
      ~insts:900
      {
        Body_builder.default_profile with
        Body_builder.w_load = 0.30;
        load_patterns =
          [ (Block.Seq_stride { region = rate_tables; start = 0; stride = 64; span = mb 12 }, 1.0) ];
      }
  in
  let rate_handler _rng _req = [ Spec.Compute (rate_scan, 1) ] in

  (* reservation: transactional write path. *)
  let rs_space = mk_space 4 (mb 16) in
  let rs_logic =
    Body_builder.build ~rng ~code_base:(Layout.code_window rs_space ~index:0) ~label:"hr_resv"
      ~insts:600
      { Body_builder.default_profile with Body_builder.w_lock = 0.02 }
  in
  let reservation_handler _rng _req =
    [
      Spec.Compute (rs_logic, 1);
      Spec.Call { target = "UserAuthService"; req_bytes = 128; resp_bytes = 128 };
      Spec.Call { target = "ReservationDB"; req_bytes = 512; resp_bytes = 256 };
    ]
  in

  (* recommendation: score vectors (simd). *)
  let rc_space = mk_space 5 (mb 16) in
  let rc_score =
    Body_builder.build ~rng ~code_base:(Layout.code_window rc_space ~index:0) ~label:"hr_rec"
      ~insts:800
      { Body_builder.default_profile with Body_builder.w_simd = 0.16; w_fp = 0.08 }
  in
  let recommendation_handler _rng _req =
    [
      Spec.Compute (rc_score, 1);
      Spec.Call { target = "ProfileService"; req_bytes = 128; resp_bytes = 2048 };
    ]
  in

  (* profile with cache-aside backend pair. *)
  let pf_space = mk_space 6 (mb 8) in
  let pf_logic =
    Body_builder.build ~rng ~code_base:(Layout.code_window pf_space ~index:0) ~label:"hr_prof"
      ~insts:400 Body_builder.default_profile
  in
  let profile_handler rng _req =
    [
      Spec.Compute (pf_logic, 1);
      Spec.Call { target = "ProfileCache"; req_bytes = 128; resp_bytes = 2048 };
    ]
    @
    if Rng.float rng 1.0 < 0.25 then
      [ Spec.Call { target = "ProfileDB"; req_bytes = 256; resp_bytes = 2048 } ]
    else []
  in

  let ua_space = mk_space 7 (mb 8) in
  let ua_table = Layout.sub_heap ua_space ~offset:0 ~bytes:(mb 4) in
  let ua_probe =
    Body_builder.chase_block ~code_base:(Layout.code_window ua_space ~index:0) ~label:"hr_auth"
      ~region:ua_table ~span:(mb 4) ~hops:2
  in
  let ua_crypto =
    Body_builder.build ~rng ~code_base:(Layout.code_window ua_space ~index:1) ~label:"hr_crypto"
      ~insts:500
      { Body_builder.default_profile with Body_builder.w_crc = 0.2; chain = 0.5 }
  in
  let auth_handler _rng _req = [ Spec.Compute (ua_probe, 1); Spec.Compute (ua_crypto, 1) ] in

  (* memcached-style profile cache. *)
  let pc_space = mk_space 8 (mb 16) in
  let pc_arena = Layout.sub_heap pc_space ~offset:0 ~bytes:(mb 12) in
  let pc_copy =
    Body_builder.copy_block ~code_base:(Layout.code_window pc_space ~index:0) ~label:"hr_pc_copy"
      ~src:(Block.Rand_uniform { region = pc_arena; start = 0; span = mb 12 })
      ~bytes:2048
  in
  let pc_logic =
    Body_builder.build ~rng ~code_base:(Layout.code_window pc_space ~index:1) ~label:"hr_pc"
      ~insts:300 Body_builder.default_profile
  in
  let cache_handler _rng _req = [ Spec.Compute (pc_logic, 1); Spec.Compute (pc_copy, 1) ] in

  (* mongodb-style stores. *)
  let mk_store i label dataset =
    let sp = mk_space i (mb 32) in
    let idx = Layout.sub_heap sp ~offset:0 ~bytes:(mb 24) in
    let parse =
      Body_builder.build ~rng ~code_base:(Layout.code_window sp ~index:0) ~label:(label ^ "_p")
        ~insts:500 Body_builder.default_profile
    in
    let btree =
      Body_builder.chase_block ~code_base:(Layout.code_window sp ~index:2) ~label:(label ^ "_b")
        ~region:idx ~span:(mb 24) ~hops:6
    in
    fun rng _req ->
      if Rng.float rng 1.0 < 0.7 then
        [
          Spec.Compute (parse, 1);
          Spec.Compute (btree, 1);
          Spec.File_read { offset = 4096 * Rng.int rng (dataset / 4096); bytes = 4096; random = true };
        ]
      else [ Spec.Compute (parse, 1); Spec.Compute (btree, 1); Spec.File_write { bytes = 4096 } ]
  in
  let t ?(workers = 2) ?(req = 256) ?(resp = 512) ?(heap = mb 16) ?(file = 0) name handler =
    Spec.tier ~name ~server_model:Spec.Io_multiplexing ~workers ~request_bytes:req
      ~response_bytes:resp ~heap_bytes:heap ~shared_bytes:(1 lsl 18) ~file_bytes:file ~handler ()
  in
  Spec.make ~name:"hotel_reservation" ~entry:"frontend"
    ~page_cache_hint:(256 * 1024 * 1024)
    [
      t "frontend" frontend_handler ~req:384 ~resp:2048;
      t "SearchService" search_handler ~req:256 ~resp:2048;
      t "GeoService" geo_handler ~req:128 ~resp:1024 ~heap:(mb 32);
      t "RateService" rate_handler ~req:256 ~resp:1024;
      t "ReservationService" reservation_handler ~req:512 ~resp:256;
      t "RecommendationService" recommendation_handler ~req:128 ~resp:1024;
      t "ProfileService" profile_handler ~req:128 ~resp:2048 ~heap:(mb 8);
      t "UserAuthService" auth_handler ~req:128 ~resp:128 ~heap:(mb 8);
      t "ProfileCache" cache_handler ~req:128 ~resp:2048;
      t "ProfileDB" (mk_store 9 "hr_pdb" (mb 512)) ~req:256 ~resp:2048 ~heap:(mb 32)
        ~file:(mb 512);
      t "ReservationDB" (mk_store 10 "hr_rdb" (mb 512)) ~req:512 ~resp:256 ~heap:(mb 32)
        ~file:(mb 512);
    ]

let workload = Ditto_loadgen.Workload.wrk2_open
let loads = (400., 1_200., 2_400.)
