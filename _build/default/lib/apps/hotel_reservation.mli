(** Model of DeathStarBench's Hotel Reservation — a second microservice
    topology beyond the paper's Social Network evaluation, included to
    exercise the cloning pipeline's generality across RPC graphs (the
    framework "generalizes across deployments", §4.1).

    Ten services: an HTTP frontend fanning out to search (which consults
    geo and rate), reservation (backed by user auth and a MongoDB-style
    store), recommendation, and a profile service with its cache/store
    pair. Request mix: 60% searches, 25% profile/recommendation reads,
    15% reservations. *)

val spec : unit -> Ditto_app.Spec.t
val workload : Ditto_loadgen.Workload.t
val loads : float * float * float
