(** Model of NGINX 1.20 (§6.1.2): event-driven web server with one worker
    process, serving small static files, driven by open-loop tcpkali HTTP
    load. Request work: HTTP header parsing over a large, branchy code
    footprint (frontend-bound, like the real server), virtual-host/route
    lookup, a page-cache file read, header generation and body copy, and an
    access-log append. *)

val spec : unit -> Ditto_app.Spec.t
val workload : Ditto_loadgen.Workload.t
val loads : float * float * float
