open Ditto_isa
open Ditto_app
module Rng = Ditto_util.Rng

let records = 100_000
let value_bytes = 1024

let spec () =
  let space = Layout.space ~tier_index:0 ~heap_bytes:(160 * 1024 * 1024) ~shared_bytes:(1 lsl 16) in
  let dict = Layout.sub_heap space ~offset:0 ~bytes:(8 * 1024 * 1024) in
  let value_arena = Layout.sub_heap space ~offset:(16 * 1024 * 1024) ~bytes:(records * value_bytes) in
  let conn_buffers = Layout.sub_heap space ~offset:(144 * 1024 * 1024) ~bytes:(256 * 1024) in
  let rng = Rng.create 0x4ED15 in
  let parse =
    Body_builder.build ~rng ~code_base:(Layout.code_window space ~index:0) ~label:"redis_resp"
      ~insts:450
      {
        Body_builder.default_profile with
        Body_builder.w_branch = 0.17;
        branch_m = (2, 5);
        branch_n = (3, 6);
        chain = 0.30;
        load_patterns =
          [ (Block.Seq_stride { region = conn_buffers; start = 0; stride = 64; span = 1 lsl 16 }, 1.0) ];
        store_patterns =
          [ (Block.Seq_stride { region = conn_buffers; start = 0; stride = 64; span = 1 lsl 16 }, 1.0) ];
      }
  in
  let dict_probe =
    Body_builder.chase_block ~code_base:(Layout.code_window space ~index:1) ~label:"redis_dict"
      ~region:dict ~span:(8 * 1024 * 1024) ~hops:3
  in
  let command =
    Body_builder.build ~rng ~code_base:(Layout.code_window space ~index:2) ~label:"redis_cmd"
      ~insts:350
      { Body_builder.default_profile with Body_builder.w_alu = 0.46; chain = 0.35 }
  in
  let reply =
    Body_builder.copy_block ~code_base:(Layout.code_window space ~index:3) ~label:"redis_reply"
      ~src:(Block.Rand_uniform { region = value_arena; start = 0; span = records * value_bytes })
      ~bytes:value_bytes
  in
  let handler _rng _req =
    [
      Spec.Compute (parse, 1);
      Spec.Compute (dict_probe, 1);
      Spec.Compute (command, 1);
      Spec.Compute (reply, 1);
    ]
  in
  Spec.make ~name:"redis"
    [
      Spec.tier ~name:"redis" ~server_model:Spec.Io_multiplexing ~workers:1 ~request_bytes:128
        ~response_bytes:value_bytes ~heap_bytes:(160 * 1024 * 1024) ~shared_bytes:(1 lsl 16)
        ~handler ();
    ]

let workload = Ditto_loadgen.Workload.ycsb
let loads = (12_000., 35_000., 70_000.)
