open Ditto_isa
open Ditto_app
module Rng = Ditto_util.Rng

let file_count = 512
let file_bytes = 16 * 1024
let body_bytes = 10 * 1024

let spec () =
  let space = Layout.space ~tier_index:0 ~heap_bytes:(32 * 1024 * 1024) ~shared_bytes:(1 lsl 18) in
  let conn_buffers = Layout.sub_heap space ~offset:0 ~bytes:(512 * 1024) in
  let config_tree = Layout.sub_heap space ~offset:(1 lsl 20) ~bytes:(4 * 1024 * 1024) in
  let out_buffers = Layout.sub_heap space ~offset:(8 * 1024 * 1024) ~bytes:(4 * 1024 * 1024) in
  let rng = Rng.create 0x7E in
  (* A wide code footprint split over many windows: the HTTP state machine,
     header tables, module chain — NGINX's binary is i-cache-hungry. *)
  let parse_stage i =
    Body_builder.build ~rng
      ~code_base:(Layout.code_window space ~index:(2 * i))
      ~label:(Printf.sprintf "ngx_parse_%d" i) ~insts:800
      {
        Body_builder.default_profile with
        Body_builder.w_branch = 0.24;
        w_load = 0.22;
        branch_m = (1, 4);
        branch_n = (2, 5);
        chain = 0.30;
        load_patterns =
          [ (Block.Seq_stride { region = conn_buffers; start = 0; stride = 64; span = 1 lsl 18 }, 0.7);
            (Block.Rand_uniform { region = conn_buffers; start = 0; span = 1 lsl 18 }, 0.3) ];
        store_patterns =
          [ (Block.Seq_stride { region = out_buffers; start = 0; stride = 64; span = 1 lsl 20 }, 1.0) ];
      }
  in
  let parse = Array.init 5 parse_stage in
  let route =
    Body_builder.chase_block ~code_base:(Layout.code_window space ~index:12) ~label:"ngx_route"
      ~region:config_tree ~span:(4 * 1024 * 1024) ~hops:4
  in
  let headers =
    Body_builder.build ~rng ~code_base:(Layout.code_window space ~index:13) ~label:"ngx_headers"
      ~insts:600
      {
        Body_builder.default_profile with
        Body_builder.w_store = 0.20;
        w_branch = 0.18;
        w_simd = 0.05;
        store_patterns =
          [ (Block.Seq_stride { region = out_buffers; start = 0; stride = 64; span = 1 lsl 20 }, 1.0) ];
      }
  in
  let body_copy =
    Body_builder.copy_block ~code_base:(Layout.code_window space ~index:14) ~label:"ngx_body"
      ~src:(Block.Rand_uniform { region = out_buffers; start = 0; span = 4 * 1024 * 1024 })
      ~bytes:body_bytes
  in
  let handler rng _req =
    let file = Rng.int rng file_count in
    [
      Spec.Compute (parse.(0), 1);
      Spec.Compute (parse.(1), 1);
      Spec.Compute (parse.(2), 1);
      Spec.Compute (route, 1);
      Spec.Compute (parse.(3), 1);
      Spec.File_read { offset = file * file_bytes; bytes = body_bytes; random = true };
      Spec.Compute (headers, 1);
      Spec.Compute (body_copy, 1);
      Spec.Compute (parse.(4), 1);
      Spec.File_write { bytes = 120 } (* access log append *);
    ]
  in
  Spec.make ~name:"nginx"
    ~page_cache_hint:(64 * 1024 * 1024) (* files fit: served from memory *)
    [
      Spec.tier ~name:"nginx" ~server_model:Spec.Io_multiplexing ~workers:1 ~request_bytes:220
        ~response_bytes:(body_bytes + 256) ~heap_bytes:(32 * 1024 * 1024)
        ~shared_bytes:(1 lsl 18)
        ~file_bytes:(file_count * file_bytes) ~handler ();
    ]

let workload = Ditto_loadgen.Workload.tcpkali
let loads = (8_000., 25_000., 45_000.)
