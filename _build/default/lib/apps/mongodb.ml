open Ditto_isa
open Ditto_app
module Rng = Ditto_util.Rng

let records = 1_000_000
let record_bytes = 4096
let dataset_bytes = records * record_bytes (* 4GB *)

let spec () =
  let space = Layout.space ~tier_index:0 ~heap_bytes:(192 * 1024 * 1024) ~shared_bytes:(2 lsl 20) in
  let index = Layout.sub_heap space ~offset:0 ~bytes:(128 * 1024 * 1024) in
  let bson_buffers = Layout.sub_heap space ~offset:(160 * 1024 * 1024) ~bytes:(8 * 1024 * 1024) in
  let rng = Rng.create 0xD0C in
  let parse =
    Body_builder.build ~rng ~code_base:(Layout.code_window space ~index:0) ~label:"mongo_bson"
      ~insts:1100
      {
        Body_builder.default_profile with
        Body_builder.w_branch = 0.18;
        w_load = 0.26;
        w_store = 0.12;
        chain = 0.35;
        load_patterns =
          [ (Block.Seq_stride { region = bson_buffers; start = 0; stride = 64; span = 1 lsl 21 }, 1.0) ];
        store_patterns =
          [ (Block.Seq_stride { region = bson_buffers; start = 0; stride = 64; span = 1 lsl 21 }, 1.0) ];
      }
  in
  let plan =
    Body_builder.build ~rng ~code_base:(Layout.code_window space ~index:2) ~label:"mongo_plan"
      ~insts:700
      { Body_builder.default_profile with Body_builder.w_branch = 0.20; w_mul = 0.04; w_fp = 0.03 }
  in
  let btree =
    Body_builder.chase_block ~code_base:(Layout.code_window space ~index:4) ~label:"mongo_btree"
      ~region:index ~span:(128 * 1024 * 1024) ~hops:12
  in
  let assemble =
    Body_builder.build ~rng ~code_base:(Layout.code_window space ~index:5) ~label:"mongo_doc"
      ~insts:800
      {
        Body_builder.default_profile with
        Body_builder.w_store = 0.18;
        w_simd = 0.04;
        store_patterns =
          [ (Block.Seq_stride { region = bson_buffers; start = 1 lsl 20; stride = 64; span = 1 lsl 21 }, 1.0) ];
      }
  in
  let keys = Ditto_loadgen.Workload.Keys.uniform ~records ~record_bytes in
  let handler rng _req =
    let offset = Ditto_loadgen.Workload.Keys.sample_offset keys rng in
    [
      Spec.Compute (parse, 1);
      Spec.Compute (plan, 1);
      Spec.Compute (btree, 1);
      Spec.File_read { offset; bytes = record_bytes; random = true };
      Spec.Compute (assemble, 1);
      Spec.Syscall Ditto_os.Syscall.Futex_wake;
    ]
  in
  let checkpoint _rng =
    [
      Spec.File_write { bytes = 1 lsl 20 };
      Spec.Syscall (Ditto_os.Syscall.Nanosleep { seconds = 0.0 });
    ]
  in
  Spec.make ~name:"mongodb"
    ~page_cache_hint:(1024 * 1024 * 1024) (* 1GB cache vs 4GB data: disk-bound *)
    [
      Spec.tier ~name:"mongodb" ~server_model:Spec.Blocking ~dynamic_threads:true ~workers:16
        ~background:[ ("checkpoint", 0.5) ]
        ~background_handler:checkpoint ~request_bytes:512 ~response_bytes:record_bytes
        ~heap_bytes:(192 * 1024 * 1024) ~shared_bytes:(2 lsl 20) ~file_bytes:dataset_bytes
        ~handler ();
    ]

let workload = Ditto_loadgen.Workload.ycsb
let loads = (300., 900., 2_000.)
