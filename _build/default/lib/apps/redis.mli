(** Model of Redis 6.2 (§6.1.2): single-threaded in-memory store,
    persistence disabled, 100K records, YCSB closed-loop client. Request
    work: RESP protocol parse, main-dict probe, small value copy — a
    compact, cache-friendly code path with comparatively high IPC; the
    single worker thread bounds throughput. *)

val spec : unit -> Ditto_app.Spec.t
val workload : Ditto_loadgen.Workload.t
val loads : float * float * float
