open Ditto_isa
module Rng = Ditto_util.Rng
module Dist = Ditto_util.Dist

type profile = {
  w_alu : float;
  w_mul : float;
  w_div : float;
  w_fp : float;
  w_simd : float;
  w_load : float;
  w_store : float;
  w_branch : float;
  w_lock : float;
  w_crc : float;
  w_lea : float;
  load_patterns : (Block.mem_pattern * float) list;
  store_patterns : (Block.mem_pattern * float) list;
  branch_m : int * int;
  branch_n : int * int;
  chain : float;
}

let default_profile =
  {
    w_alu = 0.40;
    w_mul = 0.02;
    w_div = 0.002;
    w_fp = 0.01;
    w_simd = 0.02;
    w_load = 0.24;
    w_store = 0.10;
    w_branch = 0.16;
    w_lock = 0.002;
    w_crc = 0.005;
    w_lea = 0.04;
    load_patterns = [];
    store_patterns = [];
    branch_m = (2, 7);
    branch_n = (3, 8);
    chain = 0.25;
  }

type op_kind =
  | K_alu
  | K_mul
  | K_div
  | K_fp
  | K_simd
  | K_load
  | K_store
  | K_branch
  | K_lock
  | K_crc
  | K_lea

let alu_forms = [| "ADD_GPR64_GPR64"; "SUB_GPR64_GPR64"; "AND_GPR64_GPR64"; "OR_GPR64_GPR64";
                   "XOR_GPR64_GPR64"; "CMP_GPR64_GPR64"; "TEST_GPR64_IMM"; "INC_GPR64";
                   "MOV_GPR64_GPR64"; "MOV_GPR64_IMM"; "SHL_GPR64_IMM"; "CMOVZ_GPR64_GPR64" |]

let fp_forms = [| "ADDSD_XMM_XMM"; "SUBSD_XMM_XMM"; "MULSD_XMM_XMM"; "CVTSI2SD_XMM_GPR64" |]
let simd_forms = [| "PADDD_XMM_XMM"; "PAND_XMM_XMM"; "PCMPEQB_XMM_XMM"; "PSHUFB_XMM_XMM" |]
let load_forms = [| "MOV_GPR64_MEM"; "MOV_GPR32_MEM"; "MOVZX_GPR64_MEM8"; "ADD_GPR64_MEM" |]
let store_forms = [| "MOV_MEM_GPR64"; "MOV_MEM_GPR32" |]
let branch_forms = [| "JZ_REL"; "JNZ_REL"; "JL_REL" |]
let lock_forms = [| "LOCK_ADD_MEM_GPR64"; "LOCK_CMPXCHG_MEM_GPR64"; "XADD_LOCK_MEM_GPR64" |]

(* Registers 0..11 rotate freely; 12..15 are long-lived "state" registers
   that create medium-distance dependencies like real compiled code. *)
let pick_reg rng = Block.gp (Rng.int rng 12)
let pick_xmm rng = Block.xmm (Rng.int rng 12)

let sample_pattern rng patterns fallback =
  match patterns with
  | [] -> fallback
  | _ -> Dist.discrete_sample (Dist.discrete patterns) rng

let build ~rng ~code_base ~label ~insts profile =
  let kinds =
    Dist.discrete
      [
        (K_alu, profile.w_alu);
        (K_mul, profile.w_mul);
        (K_div, profile.w_div);
        (K_fp, profile.w_fp);
        (K_simd, profile.w_simd);
        (K_load, profile.w_load);
        (K_store, profile.w_store);
        (K_branch, profile.w_branch);
        (K_lock, profile.w_lock);
        (K_crc, profile.w_crc);
        (K_lea, profile.w_lea);
      ]
  in
  let load_dist = match profile.load_patterns with [] -> None | ps -> Some (Dist.discrete ps) in
  let store_dist =
    match profile.store_patterns with [] -> None | ps -> Some (Dist.discrete ps)
  in
  let prev_dst = ref (Block.gp 0) in
  let mk _i =
    let kind = Dist.discrete_sample kinds rng in
    let chained = Rng.float rng 1.0 < profile.chain in
    let src1 = if chained then !prev_dst else pick_reg rng in
    let dst = pick_reg rng in
    let temp =
      match kind with
      | K_alu ->
          Block.temp (Iform.by_name (Rng.choose rng alu_forms)) ~dst ~srcs:[| src1; dst |]
      | K_mul -> Block.temp (Iform.by_name "IMUL_GPR64_GPR64") ~dst ~srcs:[| src1; dst |]
      | K_div -> Block.temp (Iform.by_name "IDIV_GPR64") ~dst ~srcs:[| src1; dst |]
      | K_fp ->
          let d = pick_xmm rng in
          Block.temp (Iform.by_name (Rng.choose rng fp_forms)) ~dst:d ~srcs:[| d; pick_xmm rng |]
      | K_simd ->
          let d = pick_xmm rng in
          Block.temp (Iform.by_name (Rng.choose rng simd_forms)) ~dst:d ~srcs:[| d; pick_xmm rng |]
      | K_load ->
          let pattern =
            match load_dist with
            | Some d -> Dist.discrete_sample d rng
            | None -> Block.No_mem
          in
          Block.temp (Iform.by_name (Rng.choose rng load_forms)) ~dst ~srcs:[| src1 |] ~mem:pattern
      | K_store ->
          let pattern =
            match store_dist with
            | Some d -> Dist.discrete_sample d rng
            | None -> Block.No_mem
          in
          Block.temp
            (Iform.by_name (Rng.choose rng store_forms))
            ~srcs:[| src1 |]
            ~mem:pattern
      | K_branch ->
          let mlo, mhi = profile.branch_m and nlo, nhi = profile.branch_n in
          Block.temp
            (Iform.by_name (Rng.choose rng branch_forms))
            ~branch:
              {
                Block.m = Rng.range rng mlo (mhi + 1);
                n = Rng.range rng nlo (nhi + 1);
                invert = Rng.bool rng;
              }
      | K_lock ->
          let pattern =
            sample_pattern rng profile.store_patterns Block.No_mem
          in
          Block.temp (Iform.by_name (Rng.choose rng lock_forms)) ~srcs:[| src1 |] ~mem:pattern
      | K_crc -> Block.temp (Iform.by_name "CRC32_GPR64_GPR64") ~dst ~srcs:[| src1; dst |]
      | K_lea -> Block.temp (Iform.by_name "LEA_GPR64_AGEN") ~dst ~srcs:[| src1 |]
    in
    (match temp.Block.dst with d when d >= 0 -> prev_dst := d | _ -> ());
    temp
  in
  Block.make ~label ~code_base (List.init insts mk)

let copy_block ~code_base ~label ~src ~bytes =
  Block.make ~label ~code_base
    [ Block.temp (Ditto_isa.Iform.by_name "REP_MOVSB") ~srcs:[| Block.gp 6 |] ~mem:src ~rep_count:bytes ]

let chase_block ~code_base ~label ~region ~span ~hops =
  (* r11 = [r11] pointer walk with a compare+branch per hop. *)
  let r11 = Block.gp 11 in
  let temps =
    List.concat
      (List.init hops (fun _ ->
           [
             Block.temp (Iform.by_name "MOV_GPR64_MEM") ~dst:r11 ~srcs:[| r11 |]
               ~mem:(Block.Chase { region; start = 0; span });
             Block.temp (Iform.by_name "CMP_GPR64_GPR64") ~srcs:[| r11; Block.gp 4 |];
             Block.temp (Iform.by_name "JNZ_REL")
               ~branch:{ Block.m = 3; n = 4; invert = true };
           ]))
  in
  Block.make ~label ~code_base temps
