open Ditto_isa
open Ditto_app
module Rng = Ditto_util.Rng

let graph_users = 962
let graph_edges = 18_812

(* Tier indices into the shared address-space layout. *)
let idx_frontend = 0
let idx_compose = 1
let idx_unique_id = 2
let idx_text = 3
let idx_url = 4
let idx_mention = 5
let idx_user = 6
let idx_media = 7
let idx_storage = 8
let idx_user_tl = 9
let idx_home_tl = 10
let idx_social = 11
let idx_user_cache = 12
let idx_user_db = 13
let idx_post_cache = 14
let idx_post_db = 15
let idx_media_db = 16
let idx_sg_cache = 17
let idx_utl_cache = 18
let idx_htl_cache = 19
let idx_url_db = 20
let idx_media_cache = 21

let mb n = n * 1024 * 1024

let spec () =
  let rng = Rng.create 0x50C1A1 in
  let mk_space idx heap = Layout.space ~tier_index:idx ~heap_bytes:heap ~shared_bytes:(1 lsl 18) in

  (* frontend: NGINX-like HTTP termination and routing. *)
  let fe_space = mk_space idx_frontend (mb 16) in
  let fe_buffers = Layout.sub_heap fe_space ~offset:0 ~bytes:(1 lsl 19) in
  let fe_parse =
    Body_builder.build ~rng ~code_base:(Layout.code_window fe_space ~index:0) ~label:"fe_parse"
      ~insts:900
      {
        Body_builder.default_profile with
        Body_builder.w_branch = 0.22;
        branch_m = (1, 4);
        branch_n = (2, 5);
        load_patterns =
          [ (Block.Seq_stride { region = fe_buffers; start = 0; stride = 64; span = 1 lsl 19 }, 1.0) ];
        store_patterns =
          [ (Block.Seq_stride { region = fe_buffers; start = 0; stride = 64; span = 1 lsl 19 }, 1.0) ];
      }
  in
  let frontend_handler rng _req =
    let read_flow = Rng.float rng 1.0 < 0.6 in
    [
      Spec.Compute (fe_parse, 2);
      (if read_flow then
         Spec.Call { target = "HomeTimelineService"; req_bytes = 256; resp_bytes = 2048 }
       else Spec.Call { target = "ComposePostService"; req_bytes = 1024; resp_bytes = 128 });
    ]
  in

  (* compose-post: orchestration hub with wide asynchronous fan-out. *)
  let cp_space = mk_space idx_compose (mb 8) in
  let cp_logic =
    Body_builder.build ~rng ~code_base:(Layout.code_window cp_space ~index:0) ~label:"cp_logic"
      ~insts:600 Body_builder.default_profile
  in
  let compose_handler rng _req =
    List.concat
      [
        [ Spec.Compute (cp_logic, 1) ];
        [ Spec.Call { target = "UniqueIdService"; req_bytes = 64; resp_bytes = 64 } ];
        [ Spec.Call { target = "TextService"; req_bytes = 512; resp_bytes = 512 } ];
        [ Spec.Call { target = "UserService"; req_bytes = 128; resp_bytes = 256 } ];
        (if Rng.float rng 1.0 < 0.3 then
           [ Spec.Call { target = "MediaService"; req_bytes = 2048; resp_bytes = 128 } ]
         else []);
        [ Spec.Compute (cp_logic, 1) ];
        [ Spec.Call { target = "PostStorageService"; req_bytes = 1024; resp_bytes = 128 } ];
        [ Spec.Call { target = "UserTimelineService"; req_bytes = 256; resp_bytes = 128 } ];
        [ Spec.Call { target = "HomeTimelineService"; req_bytes = 256; resp_bytes = 128 } ];
      ]
  in

  (* unique-id: tiny Snowflake-style id minting. *)
  let uid_space = mk_space idx_unique_id (mb 2) in
  let uid_logic =
    Body_builder.build ~rng ~code_base:(Layout.code_window uid_space ~index:0) ~label:"uid"
      ~insts:160
      { Body_builder.default_profile with Body_builder.w_crc = 0.10; w_lock = 0.02; chain = 0.4 }
  in
  let uid_handler _rng _req = [ Spec.Compute (uid_logic, 1) ] in

  (* text-service: post-text scanning and markup (Fig. 5 column 5). *)
  let tx_space = mk_space idx_text (mb 8) in
  let tx_buffers = Layout.sub_heap tx_space ~offset:0 ~bytes:(mb 2) in
  let tx_scan =
    Body_builder.build ~rng ~code_base:(Layout.code_window tx_space ~index:0) ~label:"text_scan"
      ~insts:850
      {
        Body_builder.default_profile with
        Body_builder.w_branch = 0.22;
        w_simd = 0.08;
        branch_m = (1, 4);
        branch_n = (2, 5);
        load_patterns =
          [ (Block.Seq_stride { region = tx_buffers; start = 0; stride = 64; span = mb 2 }, 1.0) ];
        store_patterns =
          [ (Block.Seq_stride { region = tx_buffers; start = 0; stride = 64; span = mb 2 }, 1.0) ];
      }
  in
  let tx_copy =
    Body_builder.copy_block ~code_base:(Layout.code_window tx_space ~index:2) ~label:"text_copy"
      ~src:(Block.Rand_uniform { region = tx_buffers; start = 0; span = mb 2 })
      ~bytes:512
  in
  let text_handler rng _req =
    List.concat
      [
        [ Spec.Compute (tx_scan, 1); Spec.Compute (tx_copy, 1) ];
        (if Rng.float rng 1.0 < 0.5 then
           [ Spec.Call { target = "UrlShortenService"; req_bytes = 256; resp_bytes = 128 } ]
         else []);
        (if Rng.float rng 1.0 < 0.5 then
           [ Spec.Call { target = "UserMentionService"; req_bytes = 256; resp_bytes = 128 } ]
         else []);
        [ Spec.Compute (tx_scan, 1) ];
      ]
  in

  (* url-shorten: hashing-dominated. *)
  let url_space = mk_space idx_url (mb 4) in
  let url_logic =
    Body_builder.build ~rng ~code_base:(Layout.code_window url_space ~index:0) ~label:"url"
      ~insts:300
      { Body_builder.default_profile with Body_builder.w_crc = 0.15; w_mul = 0.05; chain = 0.45 }
  in
  let url_handler rng _req =
    [ Spec.Compute (url_logic, 1) ]
    @
    if Rng.float rng 1.0 < 0.5 then
      [ Spec.Call { target = "UrlShortenDB"; req_bytes = 256; resp_bytes = 256 } ]
    else []
  in

  (* user-mention: username lookups. *)
  let um_space = mk_space idx_mention (mb 8) in
  let um_table = Layout.sub_heap um_space ~offset:0 ~bytes:(mb 8) in
  let um_probe =
    Body_builder.chase_block ~code_base:(Layout.code_window um_space ~index:0) ~label:"um_probe"
      ~region:um_table ~span:(mb 8) ~hops:2
  in
  let um_logic =
    Body_builder.build ~rng ~code_base:(Layout.code_window um_space ~index:1) ~label:"um_logic"
      ~insts:350
      { Body_builder.default_profile with Body_builder.w_branch = 0.20 }
  in
  let um_handler _rng _req = [ Spec.Compute (um_logic, 1); Spec.Compute (um_probe, 1) ] in

  (* user: auth/session checks. *)
  let us_space = mk_space idx_user (mb 8) in
  let us_table = Layout.sub_heap us_space ~offset:0 ~bytes:(mb 4) in
  let us_probe =
    Body_builder.chase_block ~code_base:(Layout.code_window us_space ~index:0) ~label:"user_probe"
      ~region:us_table ~span:(mb 4) ~hops:2
  in
  let us_logic =
    Body_builder.build ~rng ~code_base:(Layout.code_window us_space ~index:1) ~label:"user_logic"
      ~insts:450
      { Body_builder.default_profile with Body_builder.w_crc = 0.04 }
  in
  let user_handler _rng _req = [ Spec.Compute (us_logic, 1); Spec.Compute (us_probe, 1) ] in

  (* media: SIMD-heavy thumbnail/transcode-ish work. *)
  let md_space = mk_space idx_media (mb 32) in
  let md_buffers = Layout.sub_heap md_space ~offset:0 ~bytes:(mb 16) in
  let md_logic =
    Body_builder.build ~rng ~code_base:(Layout.code_window md_space ~index:0) ~label:"media"
      ~insts:1500
      {
        Body_builder.default_profile with
        Body_builder.w_simd = 0.20;
        w_fp = 0.06;
        w_load = 0.26;
        w_branch = 0.08;
        load_patterns =
          [ (Block.Seq_stride { region = md_buffers; start = 0; stride = 64; span = mb 16 }, 1.0) ];
        store_patterns =
          [ (Block.Seq_stride { region = md_buffers; start = mb 8; stride = 64; span = mb 8 }, 1.0) ];
      }
  in
  let media_handler _rng _req = [ Spec.Compute (md_logic, 1) ] in

  (* post-storage: MongoDB-like document store over a 1GB dataset. *)
  let ps_space = mk_space idx_storage (mb 64) in
  let ps_index = Layout.sub_heap ps_space ~offset:0 ~bytes:(mb 48) in
  let ps_parse =
    Body_builder.build ~rng ~code_base:(Layout.code_window ps_space ~index:0) ~label:"ps_bson"
      ~insts:600 Body_builder.default_profile
  in
  let ps_btree =
    Body_builder.chase_block ~code_base:(Layout.code_window ps_space ~index:2) ~label:"ps_btree"
      ~region:ps_index ~span:(mb 48) ~hops:8
  in
  let ps_dataset = 1024 * 1024 * 1024 in
  let storage_handler rng _req =
    let read = Rng.float rng 1.0 < 0.7 in
    if read then
      [
        Spec.Compute (ps_parse, 1);
        Spec.Compute (ps_btree, 1);
        Spec.File_read
          { offset = 4096 * Rng.int rng (ps_dataset / 4096); bytes = 4096; random = true };
      ]
    else
      [ Spec.Compute (ps_parse, 1); Spec.Compute (ps_btree, 1); Spec.File_write { bytes = 4096 } ]
  in

  (* user-timeline / home-timeline: Redis-backed timeline stores. *)
  let mk_timeline idx label calls =
    let space = mk_space idx (mb 32) in
    let store = Layout.sub_heap space ~offset:0 ~bytes:(mb 16) in
    let probe =
      Body_builder.chase_block ~code_base:(Layout.code_window space ~index:0)
        ~label:(label ^ "_probe") ~region:store ~span:(mb 16) ~hops:3
    in
    let rank =
      Body_builder.build ~rng ~code_base:(Layout.code_window space ~index:1)
        ~label:(label ^ "_rank") ~insts:400
        { Body_builder.default_profile with Body_builder.w_fp = 0.08; w_mul = 0.04 }
    in
    fun rng _req ->
      List.concat
        [ [ Spec.Compute (probe, 1); Spec.Compute (rank, 1) ]; calls rng ]
  in
  let user_tl_handler =
    mk_timeline idx_user_tl "utl" (fun rng ->
        if Rng.float rng 1.0 < 0.3 then
          [ Spec.Call { target = "PostStorageService"; req_bytes = 256; resp_bytes = 1024 } ]
        else [])
  in
  let home_tl_handler =
    mk_timeline idx_home_tl "htl" (fun rng ->
        List.concat
          [
            [ Spec.Call { target = "PostStorageService"; req_bytes = 256; resp_bytes = 1024 } ];
            (if Rng.float rng 1.0 < 0.5 then
               [ Spec.Call { target = "PostStorageService"; req_bytes = 256; resp_bytes = 1024 } ]
             else []);
            (if Rng.float rng 1.0 < 0.4 then
               [ Spec.Call { target = "SocialGraphService"; req_bytes = 128; resp_bytes = 512 } ]
             else []);
          ])
  in

  (* social-graph: follow-relationship traversal (Fig. 5 column 6). The
     socfb-Reed98 graph is small (962 users / 18.8K edges), so the
     adjacency structure is cache-resident and the service runs at high
     IPC with few LLC misses, as the paper observes. *)
  let sg_space = mk_space idx_social (mb 8) in
  let sg_adjacency = Layout.sub_heap sg_space ~offset:0 ~bytes:(mb 1) in
  let sg_walk =
    Body_builder.chase_block ~code_base:(Layout.code_window sg_space ~index:0) ~label:"sg_walk"
      ~region:sg_adjacency ~span:(mb 1) ~hops:10
  in
  let sg_merge =
    Body_builder.build ~rng ~code_base:(Layout.code_window sg_space ~index:1) ~label:"sg_merge"
      ~insts:500
      { Body_builder.default_profile with Body_builder.w_alu = 0.46; w_branch = 0.18; chain = 0.3 }
  in
  let social_handler _rng _req = [ Spec.Compute (sg_walk, 1); Spec.Compute (sg_merge, 1) ] in

  (* DeathStarBench pairs each stateful service with a Memcached cache and
     a MongoDB store; these backends bring the topology to 21 services. *)
  let mk_cache_tier idx label =
    let space = mk_space idx (mb 16) in
    let arena = Layout.sub_heap space ~offset:0 ~bytes:(mb 12) in
    let table = Layout.sub_heap space ~offset:(mb 12) ~bytes:(mb 2) in
    let parse =
      Body_builder.build ~rng ~code_base:(Layout.code_window space ~index:0)
        ~label:(label ^ "_parse") ~insts:250
        { Body_builder.default_profile with Body_builder.w_crc = 0.04; w_branch = 0.18 }
    in
    let probe =
      Body_builder.chase_block ~code_base:(Layout.code_window space ~index:1)
        ~label:(label ^ "_probe") ~region:table ~span:(mb 2) ~hops:3
    in
    let copy =
      Body_builder.copy_block ~code_base:(Layout.code_window space ~index:2)
        ~label:(label ^ "_copy")
        ~src:(Block.Rand_uniform { region = arena; start = 0; span = mb 12 })
        ~bytes:1024
    in
    fun _rng _req -> [ Spec.Compute (parse, 1); Spec.Compute (probe, 1); Spec.Compute (copy, 1) ]
  in
  let mk_db_tier idx label ~dataset =
    let space = mk_space idx (mb 32) in
    let index_region = Layout.sub_heap space ~offset:0 ~bytes:(mb 24) in
    let parse =
      Body_builder.build ~rng ~code_base:(Layout.code_window space ~index:0)
        ~label:(label ^ "_bson") ~insts:500 Body_builder.default_profile
    in
    let btree =
      Body_builder.chase_block ~code_base:(Layout.code_window space ~index:2)
        ~label:(label ^ "_btree") ~region:index_region ~span:(mb 24) ~hops:6
    in
    fun rng _req ->
      let read = Rng.float rng 1.0 < 0.8 in
      if read then
        [
          Spec.Compute (parse, 1);
          Spec.Compute (btree, 1);
          Spec.File_read { offset = 4096 * Rng.int rng (dataset / 4096); bytes = 4096; random = true };
        ]
      else [ Spec.Compute (parse, 1); Spec.Compute (btree, 1); Spec.File_write { bytes = 4096 } ]
  in
  (* Cache-aside: hit in the cache tier, or fall through to the store. *)
  let cache_aside ~cache ~db ~miss_p base rng req =
    base rng req
    @ [ Spec.Call { target = cache; req_bytes = 128; resp_bytes = 1024 } ]
    @
    if Rng.float rng 1.0 < miss_p then
      [ Spec.Call { target = db; req_bytes = 256; resp_bytes = 1024 } ]
    else []
  in
  let t ?(workers = 2) ?(client = Spec.Sync_client) ?(req = 256) ?(resp = 512) ?(heap = mb 8)
      ?(file = 0) name handler =
    Spec.tier ~name ~server_model:Spec.Io_multiplexing ~client_model:client ~workers
      ~request_bytes:req ~response_bytes:resp ~heap_bytes:heap ~shared_bytes:(1 lsl 18)
      ~file_bytes:file ~handler ()
  in
  Spec.make ~name:"social_network" ~entry:"frontend"
    ~page_cache_hint:(512 * 1024 * 1024)
    [
      t "frontend" frontend_handler ~req:384 ~resp:1024 ~heap:(mb 16);
      t "ComposePostService" compose_handler ~client:Spec.Async_client ~req:1024 ~resp:128;
      t "UniqueIdService" uid_handler ~req:64 ~resp:64 ~heap:(mb 2);
      t "TextService" text_handler ~req:512 ~resp:512;
      t "UrlShortenService" url_handler ~req:256 ~resp:128 ~heap:(mb 4);
      t "UserMentionService" um_handler ~req:256 ~resp:128;
      t "UserService"
        (cache_aside ~cache:"UserCache" ~db:"UserDB" ~miss_p:0.2 user_handler)
        ~req:128 ~resp:256;
      t "MediaService"
        (cache_aside ~cache:"MediaCache" ~db:"MediaDB" ~miss_p:0.35 media_handler)
        ~req:2048 ~resp:128 ~heap:(mb 32);
      t "PostStorageService"
        (cache_aside ~cache:"PostCache" ~db:"PostDB" ~miss_p:0.3 storage_handler)
        ~workers:4 ~req:1024 ~resp:1024 ~heap:(mb 64) ~file:(1024 * 1024 * 1024);
      t "UserTimelineService"
        (cache_aside ~cache:"UserTimelineCache" ~db:"PostDB" ~miss_p:0.15 user_tl_handler)
        ~req:256 ~resp:128 ~heap:(mb 32);
      t "HomeTimelineService"
        (cache_aside ~cache:"HomeTimelineCache" ~db:"PostDB" ~miss_p:0.1 home_tl_handler)
        ~client:Spec.Async_client ~req:256 ~resp:2048 ~heap:(mb 32);
      t "SocialGraphService"
        (cache_aside ~cache:"SocialGraphCache" ~db:"UserDB" ~miss_p:0.1 social_handler)
        ~req:128 ~resp:512 ~heap:(mb 8);
      t "UrlShortenDB" (mk_db_tier idx_url_db "urldb" ~dataset:(mb 256)) ~req:256 ~resp:1024
        ~heap:(mb 32) ~file:(mb 256);
      t "UserCache" (mk_cache_tier idx_user_cache "ucache") ~req:128 ~resp:1024 ~heap:(mb 16);
      t "UserDB" (mk_db_tier idx_user_db "userdb" ~dataset:(mb 512)) ~req:256 ~resp:1024
        ~heap:(mb 32) ~file:(mb 512);
      t "PostCache" (mk_cache_tier idx_post_cache "pcache") ~req:128 ~resp:1024 ~heap:(mb 16);
      t "PostDB" (mk_db_tier idx_post_db "postdb" ~dataset:(1024 * 1024 * 1024)) ~workers:4
        ~req:256 ~resp:1024 ~heap:(mb 32) ~file:(1024 * 1024 * 1024);
      t "MediaCache" (mk_cache_tier idx_media_cache "mcache") ~req:128 ~resp:1024 ~heap:(mb 16);
      t "MediaDB" (mk_db_tier idx_media_db "mediadb" ~dataset:(mb 512)) ~req:256 ~resp:1024
        ~heap:(mb 32) ~file:(mb 512);
      t "SocialGraphCache" (mk_cache_tier idx_sg_cache "sgcache") ~req:128 ~resp:1024
        ~heap:(mb 16);
      t "UserTimelineCache" (mk_cache_tier idx_utl_cache "utlcache") ~req:128 ~resp:1024
        ~heap:(mb 16);
      t "HomeTimelineCache" (mk_cache_tier idx_htl_cache "htlcache") ~req:128 ~resp:1024
        ~heap:(mb 16);
    ]

let workload = Ditto_loadgen.Workload.wrk2_open
let loads = (300., 900., 1_600.)
let fig6_qps = [ 200.; 500.; 1000.; 1500.; 2000. ]
