type entry = {
  name : string;
  spec : unit -> Ditto_app.Spec.t;
  workload : Ditto_loadgen.Workload.t;
  loads : float * float * float;
  focus_tiers : string list;
}

let all =
  [
    {
      name = "memcached";
      spec = Memcached.spec;
      workload = Memcached.workload;
      loads = Memcached.loads;
      focus_tiers = [ "memcached" ];
    };
    {
      name = "nginx";
      spec = Nginx.spec;
      workload = Nginx.workload;
      loads = Nginx.loads;
      focus_tiers = [ "nginx" ];
    };
    {
      name = "mongodb";
      spec = Mongodb.spec;
      workload = Mongodb.workload;
      loads = Mongodb.loads;
      focus_tiers = [ "mongodb" ];
    };
    {
      name = "redis";
      spec = Redis.spec;
      workload = Redis.workload;
      loads = Redis.loads;
      focus_tiers = [ "redis" ];
    };
    {
      name = "social_network";
      spec = Social_network.spec;
      workload = Social_network.workload;
      loads = Social_network.loads;
      focus_tiers = [ "TextService"; "SocialGraphService" ];
    };
  ]

let extras =
  [
    {
      name = "hotel_reservation";
      spec = Hotel_reservation.spec;
      workload = Hotel_reservation.workload;
      loads = Hotel_reservation.loads;
      focus_tiers = [ "SearchService"; "GeoService" ];
    };
    {
      name = "media_service";
      spec = Media_service.spec;
      workload = Media_service.workload;
      loads = Media_service.loads;
      focus_tiers = [ "PageService"; "ReviewStorageService" ];
    };
  ]

let by_name name =
  match List.find_opt (fun e -> e.name = name) (all @ extras) with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Registry.by_name: unknown app %S" name)

let singles = List.filter (fun e -> e.name <> "social_network") all
