(** Interference micro-benchmarks: the stress-ng / iBench / iperf3 roles of
    §6.5. Each returns a stream generator suitable for
    {!Ditto_app.Measure.config}'s [stressor] field — a burst of antagonist
    work interleaved with the victim's requests. *)

type t = Ditto_util.Rng.t -> int -> Ditto_app.Spec.op list

val cpu_spin : t
(** ALU-saturating loop with no memory traffic: pairs with an SMT sibling
    (hyperthreading contention). *)

val l1d : t
(** Sweeps a 32KB window: evicts the victim's L1d. *)

val l2 : t
(** Sweeps a window sized to a typical L2: evicts L2 (and adds LLC
    accesses with constant misses, the effect Fig. 10 calls out). *)

val llc : t
(** Streams tens of MB: flushes the shared LLC (iBench-style). *)

val by_name : string -> t
(** ["HT"|"L1d"|"L2"|"LLC"] — raises [Not_found] otherwise. *)
