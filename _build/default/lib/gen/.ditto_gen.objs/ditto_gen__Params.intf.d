lib/gen/params.mli: Format
