lib/gen/clone.mli: Body_gen Ditto_app Ditto_profile Ditto_trace Params
