lib/gen/trace_export.ml: Block Buffer Ditto_isa Ditto_profile Fun Iclass Iform List Printf
