lib/gen/params.ml: Format
