lib/gen/body_gen.mli: Ditto_app Ditto_profile Ditto_trace Ditto_util Params
