lib/gen/trace_export.mli: Ditto_app
