lib/gen/body_gen.ml: Array Block Ditto_app Ditto_isa Ditto_profile Ditto_trace Ditto_util Float Iclass Iform Layout List Params Printf Spec
