lib/gen/clone.ml: Body_gen Ditto_app Ditto_profile Ditto_trace Layout List Params Spec
