(** Synthetic application-body generator (§4.4).

    Produces a handler whose instruction blocks reproduce the profiled
    instruction mix, branch behaviour (bitmask taken/transition patterns),
    instruction and data working-set decompositions (Eqs. 1 and 2, Fig. 4's
    window layout), and register-assigned dependency distances with
    pointer-chasing loads for MLP — plus system calls and downstream RPCs
    drawn from their profiled distributions. The generated code sequence is
    entirely distinct from the original's (§4.1 "Abstraction"): only
    statistics cross the boundary. *)

(** Which profile components to incorporate — the A..I decomposition of
    Fig. 9. *)
type features = {
  f_syscalls : bool;
  f_inst_count : bool;
  f_inst_mix : bool;
  f_branches : bool;
  f_i_mem : bool;
  f_d_mem : bool;
  f_deps : bool;
}

val all_features : features
val no_features : features

val stage : char -> features
(** ['A'].. ['H'] per Fig. 9 (stage I is H plus tuning, applied via
    {!Params}). Raises [Invalid_argument] otherwise. *)

val generate :
  profile:Ditto_profile.Tier_profile.t ->
  space:Ditto_app.Layout.space ->
  features:features ->
  params:Params.t ->
  downstream:Ditto_trace.Dag.edge list ->
  seed:int ->
  Ditto_util.Rng.t -> int -> Ditto_app.Spec.op list
(** The returned closure is the synthetic tier's request handler. Blocks
    are generated once (hard-coded offsets and bitmasks, like emitted
    assembly); per-request variation comes only from profiled
    probabilities (call fan-out, syscall counts). *)
