(** Clone assembly: profile → synthetic {!Ditto_app.Spec.t} (§4.1–4.4).

    The skeleton generator recreates each tier's thread and network models
    from the skeleton profile; the body generator fills the handlers; the
    topology DAG wires synthetic tiers together with the original's RPC
    interfaces. The resulting spec runs through exactly the same
    {!Ditto_app.Runner} as the original. *)

val synth_tier :
  ?features:Body_gen.features ->
  ?params:Params.t ->
  ?seed:int ->
  profile:Ditto_profile.Tier_profile.t ->
  space:Ditto_app.Layout.space ->
  downstream:Ditto_trace.Dag.edge list ->
  unit ->
  Ditto_app.Spec.tier

val synth_app :
  ?features:Body_gen.features ->
  ?params:(string -> Params.t) ->
  ?seed:int ->
  Ditto_profile.Tier_profile.app ->
  Ditto_app.Spec.t
(** Clone every tier. [params] maps tier name to its calibrated knobs
    (defaults to {!Params.default} for all). The synthetic app's name is
    the original's suffixed with ["_synth"]. *)
