open Ditto_isa
module P = Ditto_profile

type access = { addr : int; write : bool }

let collect ~tier ~requests ~seed ~max_accesses =
  let out = ref [] in
  let count = ref 0 in
  let push addr write =
    if !count < max_accesses then begin
      incr count;
      out := { addr; write } :: !out
    end
  in
  let obs =
    {
      P.Stream.null_observer with
      P.Stream.on_event =
        (fun ev ->
          if ev.Block.ev_addr >= 0 then begin
            let klass = ev.Block.ev_temp.Block.iform.Iform.klass in
            if klass = Iclass.Rep_string then begin
              let lines = max 1 (ev.Block.ev_temp.Block.rep_count / 64) in
              for i = 0 to lines - 1 do
                push (ev.Block.ev_addr + (64 * i)) false
              done
            end
            else push ev.Block.ev_addr (Iclass.is_memory_write klass)
          end);
    }
  in
  P.Stream.drive ~tier ~requests ~seed [ obs ];
  List.rev !out

let to_ramulator accesses =
  let buf = Buffer.create (List.length accesses * 16) in
  List.iter
    (fun a ->
      Buffer.add_string buf (Printf.sprintf "0x%x %s\n" a.addr (if a.write then "W" else "R")))
    accesses;
  Buffer.contents buf

let save ~path ~tier ~requests ~seed ?(max_accesses = 1_000_000) () =
  let accesses = collect ~tier ~requests ~seed ~max_accesses in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_ramulator accesses));
  List.length accesses
