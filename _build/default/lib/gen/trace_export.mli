(** Memory-trace export for trace-driven simulators.

    §5: "the synthesized binaries can run directly on hardware,
    execution-driven simulators like gem5 and ZSim, or their traces can be
    fed to trace-driven simulators like Ramulator." This module walks a
    synthetic (or original) tier's dynamic instruction stream and emits its
    memory accesses in Ramulator's simple trace format —
    [<hex address> R|W] per line — plus an instruction-fetch variant. *)

type access = { addr : int; write : bool }

val collect :
  tier:Ditto_app.Spec.tier -> requests:int -> seed:int -> max_accesses:int -> access list
(** Dynamic data accesses of the tier's handler stream, REP operations
    expanded to their per-line touches, truncated at [max_accesses]. *)

val to_ramulator : access list -> string
(** One [0x<addr> R|W] line per access. *)

val save :
  path:string ->
  tier:Ditto_app.Spec.tier ->
  requests:int ->
  seed:int ->
  ?max_accesses:int ->
  unit ->
  int
(** Write the trace file; returns the number of accesses written. *)
