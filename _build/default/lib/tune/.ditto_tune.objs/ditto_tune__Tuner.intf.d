lib/tune/tuner.mli: Ditto_app Ditto_gen Ditto_profile Ditto_uarch
