lib/tune/tuner.ml: Counters Ditto_app Ditto_gen Ditto_profile Ditto_uarch Float Hashtbl List Measure Option Runner Service String
