open Ditto_uarch
open Ditto_app
module P = Ditto_profile
module Params = Ditto_gen.Params

type iteration = {
  iter : int;
  worst_error : float;
  errors : (string * float) list;
}

type report = {
  iterations : iteration list;
  converged : bool;
  final_params : (string * Params.t) list;
}

let rel_err actual synth = if actual = 0.0 then 0.0 else Float.abs (synth -. actual) /. actual

let counter_errors ~original ~synthetic ~orig_requests ~synth_requests =
  let per_req c n = float_of_int c.Counters.insts /. float_of_int (max 1 n) in
  [
    ("ipc", rel_err (Counters.ipc original) (Counters.ipc synthetic));
    ("insts", rel_err (per_req original orig_requests) (per_req synthetic synth_requests));
    ("branch", rel_err (Counters.branch_miss_rate original) (Counters.branch_miss_rate synthetic));
    ("l1i", rel_err (Counters.l1i_miss_rate original) (Counters.l1i_miss_rate synthetic));
    ("l1d", rel_err (Counters.l1d_miss_rate original) (Counters.l1d_miss_rate synthetic));
    ("l2", rel_err (Counters.l2_miss_rate original) (Counters.l2_miss_rate synthetic));
    ("llc", rel_err (Counters.llc_miss_rate original) (Counters.llc_miss_rate synthetic));
  ]

let clamp lo hi x = Float.max lo (Float.min hi x)

(* One feedback step for a tier's knobs: multiplicative correction toward
   the original's counter, damped for stability (the knob-to-counter
   relationships are roughly linear, §4.5). *)
let adjust (p : Params.t) ~(orig : Counters.t) ~(synth : Counters.t) ~orig_requests
    ~synth_requests =
  let ratio f =
    let a = f orig and s = f synth in
    if a <= 0.0 && s <= 0.0 then 1.0
    else if s <= 0.0 then 2.0 (* synthetic shows none of the events: push up *)
    else if a <= 0.0 then 0.5
    else Float.min 8.0 (Float.max 0.125 (a /. s))
  in
  let damp ?(k = 0.6) r = r ** k in
  let inst_ratio =
    let a = float_of_int orig.Counters.insts /. float_of_int (max 1 orig_requests) in
    let s = float_of_int synth.Counters.insts /. float_of_int (max 1 synth_requests) in
    if s <= 0.0 then 1.0 else a /. s
  in
  let i_ratio = ratio Counters.l1i_miss_rate in
  let cpi_ratio =
    let a = Counters.cpi orig and s = Counters.cpi synth in
    if a <= 0.0 || s <= 0.0 then 1.0 else Float.min 4.0 (Float.max 0.25 (a /. s))
  in
  let d_ratio = ratio Counters.l1d_miss_rate in
  let big_ratio =
    (* LLC traffic responds to how many accesses hit the large sets. *)
    let r2 = ratio Counters.l2_miss_rate and r3 = ratio Counters.llc_miss_rate in
    (r2 ** 0.4) *. (r3 ** 0.6)
  in
  let br_a = Counters.branch_miss_rate orig and br_s = Counters.branch_miss_rate synth in
  let m_shift =
    (* More mispredicts needed -> lower m (more volatile minority). *)
    if br_s > br_a *. 1.25 then p.Params.branch_m_shift + 1
    else if br_s < br_a /. 1.25 then p.Params.branch_m_shift - 1
    else p.Params.branch_m_shift
  in
  {
    p with
    Params.inst_scale = clamp 0.25 4.0 (p.Params.inst_scale *. damp inst_ratio);
    i_ws_scale = clamp 0.25 64.0 (p.Params.i_ws_scale *. damp ~k:0.35 i_ratio);
    d_ws_scale = clamp 0.25 16.0 (p.Params.d_ws_scale *. damp d_ratio);
    (* LLC misses alone do not pin this knob down (streaming misses can be
       traded between rep bursts and scattered accesses at equal counts but
       very different cost); the CPI residual breaks the tie. *)
    big_mass_scale =
      clamp 0.1 8.0
        (p.Params.big_mass_scale *. damp ~k:0.7 big_ratio *. damp ~k:0.4 cpi_ratio);
    branch_m_shift = max (-4) (min 4 m_shift);
    (* Pointer chasing trades MLP for serialisation: steer it with the CPI
       residual the other knobs do not explain (the paper sets it from
       measured MLP). *)
    chase_scale = clamp 0.0 4.0 (p.Params.chase_scale *. damp ~k:0.7 cpi_ratio);
  }

let tune ?(max_iterations = 10) ?(target_error = 0.05) ?(seed = 1009) ~config ~load ~reference
    ~(profile : P.Tier_profile.app) () =
  (* Counter calibration only needs a short run. *)
  let tune_load = { load with Service.duration = Float.min load.Service.duration 0.4 } in
  let params : (string, Params.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (tp : P.Tier_profile.t) ->
      Hashtbl.replace params tp.P.Tier_profile.tier_name Params.default)
    profile.P.Tier_profile.tiers;
  let param_fn name =
    Option.value ~default:Params.default (Hashtbl.find_opt params name)
  in
  let orig_measured name = List.assoc name reference.Runner.measured in
  let iterations = ref [] in
  let converged = ref false in
  let iter = ref 0 in
  let best = ref (infinity, [], None) in
  let snapshot_params () =
    Hashtbl.fold (fun name p acc -> (name, p) :: acc) params []
  in
  let synth = ref (Ditto_gen.Clone.synth_app ~params:param_fn ~seed profile) in
  while (not !converged) && !iter < max_iterations do
    incr iter;
    let out = Runner.run config ~load:tune_load !synth in
    let errors =
      List.concat_map
        (fun (tp : P.Tier_profile.t) ->
          let name = tp.P.Tier_profile.tier_name in
          let o = orig_measured name and s = List.assoc name out.Runner.measured in
          counter_errors ~original:o.Measure.counters ~synthetic:s.Measure.counters
            ~orig_requests:o.Measure.requests_measured
            ~synth_requests:s.Measure.requests_measured
          |> List.map (fun (metric, e) -> (name ^ "/" ^ metric, e)))
        profile.P.Tier_profile.tiers
    in
    let worst = List.fold_left (fun acc (_, e) -> Float.max acc e) 0.0 errors in
    iterations := { iter = !iter; worst_error = worst; errors } :: !iterations;
    (* Objective for keeping the best iterate: mean error with IPC counted
       twice (the headline metric); the convergence check stays on the
       worst single counter, per the paper's ">95% accuracy". *)
    let objective =
      let sum, n =
        List.fold_left
          (fun (s, n) (key, e) ->
            let w =
              if String.length key > 4 && String.sub key (String.length key - 3) 3 = "ipc"
              then 2.0
              else 1.0
            in
            (s +. (w *. e), n +. w))
          (0.0, 0.0) errors
      in
      sum /. Float.max 1.0 n
    in
    (let b, _, _ = !best in
     if objective < b then best := (objective, snapshot_params (), Some !synth));
    if worst <= target_error then converged := true
    else begin
      List.iter
        (fun (tp : P.Tier_profile.t) ->
          let name = tp.P.Tier_profile.tier_name in
          let o = orig_measured name and s = List.assoc name out.Runner.measured in
          let p = param_fn name in
          Hashtbl.replace params name
            (adjust p ~orig:o.Measure.counters ~synth:s.Measure.counters
               ~orig_requests:o.Measure.requests_measured
               ~synth_requests:s.Measure.requests_measured))
        profile.P.Tier_profile.tiers;
      synth := Ditto_gen.Clone.synth_app ~params:param_fn ~seed profile
    end
  done;
  (* The response surface is not perfectly monotonic (set conflicts flip
     L1i behaviour at capacity edges); keep the best iterate, not the last. *)
  let _, best_params, best_synth = !best in
  let final_params = List.sort (fun (a, _) (b, _) -> compare a b) best_params in
  let synth = match best_synth with Some s -> s | None -> !synth in
  (synth, { iterations = List.rev !iterations; converged = !converged; final_params })
