(** Prior-work baseline: a user-level, CPU-centric performance cloner in
    the style of PerfProx / MicroGrad / Joshi et al. (§2.3).

    It reproduces only the coarse 8-category instruction mix (integer
    arithmetic, multiply, divide, floating point, SIMD, load, store,
    control) with one representative instruction per category, a single
    compact code footprint, uniform small-working-set memory accesses and
    chained dependencies — and it models {e no} system calls, no I/O, no
    thread/network skeleton beyond a trivial single-worker server. The
    paper's argument is that this class of clone misses kernel time,
    off-CPU behaviour and high-level metrics; comparing it against Ditto's
    clone quantifies exactly that gap. *)

val category_of : Ditto_isa.Iclass.t -> int
(** The coarse 8-way categorisation (exposed for tests). *)

val synth_tier :
  ?seed:int ->
  profile:Ditto_profile.Tier_profile.t ->
  space:Ditto_app.Layout.space ->
  unit ->
  Ditto_app.Spec.tier

val synth_app : ?seed:int -> Ditto_profile.Tier_profile.app -> Ditto_app.Spec.t
(** Clones every tier at user level; RPC structure is preserved only as a
    direct pass-through (no downstream calls), since these tools model
    independent processes. *)
