open Ditto_isa
open Ditto_app
module P = Ditto_profile
module Rng = Ditto_util.Rng
module Dist = Ditto_util.Dist

(* 0 int-alu, 1 mul, 2 div, 3 fp, 4 simd, 5 load, 6 store, 7 control *)
let category_of (k : Iclass.t) =
  match k with
  | Iclass.Int_alu | Iclass.Lea | Iclass.Shift | Iclass.Cmov | Iclass.Crc | Iclass.Lock_rmw
  | Iclass.Nop ->
      0
  | Iclass.Int_mul -> 1
  | Iclass.Int_div -> 2
  | Iclass.Float_add | Iclass.Float_mul | Iclass.Float_div -> 3
  | Iclass.Simd_int | Iclass.Simd_float -> 4
  | Iclass.Load | Iclass.Rep_string -> 5
  | Iclass.Store -> 6
  | Iclass.Branch_cond | Iclass.Branch_uncond | Iclass.Call | Iclass.Ret -> 7

(* One representative instruction per category — the prior-work recipe. *)
let representative = function
  | 0 -> Iform.by_name "ADD_GPR64_GPR64"
  | 1 -> Iform.by_name "IMUL_GPR64_GPR64"
  | 2 -> Iform.by_name "IDIV_GPR64"
  | 3 -> Iform.by_name "MULSD_XMM_XMM"
  | 4 -> Iform.by_name "PADDD_XMM_XMM"
  | 5 -> Iform.by_name "MOV_GPR64_MEM"
  | 6 -> Iform.by_name "MOV_MEM_GPR64"
  | _ -> Iform.by_name "JNZ_REL"

let synth_tier ?(seed = 7001) ~(profile : P.Tier_profile.t) ~space () =
  let rng = Rng.create seed in
  let mix = profile.P.Tier_profile.instmix in
  (* Collapse the profiled iform counts into the 8 coarse buckets. *)
  let buckets = Array.make 8 0.0 in
  List.iter
    (fun (id, count) ->
      let cat = category_of (Iform.of_id id).Iform.klass in
      buckets.(cat) <- buckets.(cat) +. float_of_int count)
    mix.P.Instmix.iform_counts;
  let sampler =
    let pairs =
      Array.to_list (Array.mapi (fun cat w -> (cat, w)) buckets)
      |> List.filter (fun (_, w) -> w > 0.0)
    in
    match pairs with [] -> None | _ -> Some (Dist.discrete pairs)
  in
  (* A single small loop body: compact footprint, 64KB working set, fully
     chained dependencies — typical of CPU-centric miniature proxies. *)
  let work_window =
    Block.make_region
      ~base:space.Layout.heap.Block.region_base
      ~bytes:(min (64 * 1024) space.Layout.heap.Block.region_bytes)
      ~shared:false
  in
  let n_templates = 256 in
  let prev = ref (Block.gp 0) in
  let temps =
    List.init n_templates (fun i ->
        let cat = match sampler with None -> 0 | Some s -> Dist.discrete_sample s rng in
        let iform = representative cat in
        let dst = Block.gp (i mod 8) in
        let temp =
          match cat with
          | 5 ->
              Block.temp iform ~dst ~srcs:[| !prev |]
                ~mem:
                  (Block.Seq_stride
                     { region = work_window; start = 0; stride = 64; span = 64 * 1024 })
          | 6 ->
              Block.temp iform ~srcs:[| !prev |]
                ~mem:
                  (Block.Seq_stride
                     { region = work_window; start = 0; stride = 64; span = 64 * 1024 })
          | 7 -> Block.temp iform ~branch:{ Block.m = 1; n = 1; invert = false }
          | 3 | 4 ->
              let d = Block.xmm (i mod 8) in
              Block.temp iform ~dst:d ~srcs:[| d; Block.xmm ((i + 1) mod 8) |]
          | _ -> Block.temp iform ~dst ~srcs:[| !prev; dst |]
        in
        (match temp.Block.dst with d when d >= 0 && d < 16 -> prev := d | _ -> ());
        temp)
  in
  let block =
    Block.make ~label:"userlevel_proxy"
      ~code_base:(Layout.code_window space ~index:4)
      temps
  in
  let iterations =
    max 1 (int_of_float (mix.P.Instmix.insts_per_request /. float_of_int n_templates))
  in
  let handler _rng _req = [ Spec.Compute (block, iterations) ] in
  Spec.tier ~name:profile.P.Tier_profile.tier_name ~server_model:Spec.Io_multiplexing
    ~workers:1
    ~request_bytes:profile.P.Tier_profile.skeleton.P.Skeleton.request_bytes
    ~response_bytes:profile.P.Tier_profile.skeleton.P.Skeleton.response_bytes
    ~heap_bytes:profile.P.Tier_profile.heap_bytes
    ~shared_bytes:profile.P.Tier_profile.shared_bytes ~handler ()

let synth_app ?(seed = 7001) (app : P.Tier_profile.app) =
  let tiers =
    List.mapi
      (fun i (tp : P.Tier_profile.t) ->
        let space =
          Layout.space ~tier_index:i ~heap_bytes:tp.P.Tier_profile.heap_bytes
            ~shared_bytes:tp.P.Tier_profile.shared_bytes
        in
        synth_tier ~seed:(seed + i) ~profile:tp ~space ())
      app.P.Tier_profile.tiers
  in
  Spec.make
    ~name:(app.P.Tier_profile.app_name ^ "_userlevel")
    ~entry:app.P.Tier_profile.entry
    ?page_cache_hint:app.P.Tier_profile.page_cache_hint tiers
