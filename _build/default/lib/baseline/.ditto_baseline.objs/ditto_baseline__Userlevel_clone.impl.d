lib/baseline/userlevel_clone.ml: Array Block Ditto_app Ditto_isa Ditto_profile Ditto_util Iclass Iform Layout List Spec
