lib/baseline/userlevel_clone.mli: Ditto_app Ditto_isa Ditto_profile
