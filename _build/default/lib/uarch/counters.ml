type t = {
  mutable insts : int;
  mutable uops : int;
  mutable cycles : float;
  mutable branches : int;
  mutable mispredicts : int;
  mutable btb_misses : int;
  mutable itlb_misses : int;
  mutable dtlb_misses : int;
  mutable l1i_accesses : int;
  mutable l1i_misses : int;
  mutable l1d_accesses : int;
  mutable l1d_misses : int;
  mutable l2_accesses : int;
  mutable l2_misses : int;
  mutable llc_accesses : int;
  mutable llc_misses : int;
  mutable coherence_misses : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable slots_retiring : float;
  mutable slots_frontend : float;
  mutable slots_bad_spec : float;
  mutable slots_backend : float;
}

let create () =
  {
    insts = 0;
    uops = 0;
    cycles = 0.0;
    branches = 0;
    mispredicts = 0;
    btb_misses = 0;
    itlb_misses = 0;
    dtlb_misses = 0;
    l1i_accesses = 0;
    l1i_misses = 0;
    l1d_accesses = 0;
    l1d_misses = 0;
    l2_accesses = 0;
    l2_misses = 0;
    llc_accesses = 0;
    llc_misses = 0;
    coherence_misses = 0;
    bytes_read = 0;
    bytes_written = 0;
    slots_retiring = 0.0;
    slots_frontend = 0.0;
    slots_bad_spec = 0.0;
    slots_backend = 0.0;
  }

let reset t =
  t.insts <- 0;
  t.uops <- 0;
  t.cycles <- 0.0;
  t.branches <- 0;
  t.mispredicts <- 0;
  t.btb_misses <- 0;
  t.itlb_misses <- 0;
  t.dtlb_misses <- 0;
  t.l1i_accesses <- 0;
  t.l1i_misses <- 0;
  t.l1d_accesses <- 0;
  t.l1d_misses <- 0;
  t.l2_accesses <- 0;
  t.l2_misses <- 0;
  t.llc_accesses <- 0;
  t.llc_misses <- 0;
  t.coherence_misses <- 0;
  t.bytes_read <- 0;
  t.bytes_written <- 0;
  t.slots_retiring <- 0.0;
  t.slots_frontend <- 0.0;
  t.slots_bad_spec <- 0.0;
  t.slots_backend <- 0.0

let copy t = { t with insts = t.insts }

let sub a b =
  {
    insts = a.insts - b.insts;
    uops = a.uops - b.uops;
    cycles = a.cycles -. b.cycles;
    branches = a.branches - b.branches;
    mispredicts = a.mispredicts - b.mispredicts;
    btb_misses = a.btb_misses - b.btb_misses;
    itlb_misses = a.itlb_misses - b.itlb_misses;
    dtlb_misses = a.dtlb_misses - b.dtlb_misses;
    l1i_accesses = a.l1i_accesses - b.l1i_accesses;
    l1i_misses = a.l1i_misses - b.l1i_misses;
    l1d_accesses = a.l1d_accesses - b.l1d_accesses;
    l1d_misses = a.l1d_misses - b.l1d_misses;
    l2_accesses = a.l2_accesses - b.l2_accesses;
    l2_misses = a.l2_misses - b.l2_misses;
    llc_accesses = a.llc_accesses - b.llc_accesses;
    llc_misses = a.llc_misses - b.llc_misses;
    coherence_misses = a.coherence_misses - b.coherence_misses;
    bytes_read = a.bytes_read - b.bytes_read;
    bytes_written = a.bytes_written - b.bytes_written;
    slots_retiring = a.slots_retiring -. b.slots_retiring;
    slots_frontend = a.slots_frontend -. b.slots_frontend;
    slots_bad_spec = a.slots_bad_spec -. b.slots_bad_spec;
    slots_backend = a.slots_backend -. b.slots_backend;
  }

let acc into d =
  into.insts <- into.insts + d.insts;
  into.uops <- into.uops + d.uops;
  into.cycles <- into.cycles +. d.cycles;
  into.branches <- into.branches + d.branches;
  into.mispredicts <- into.mispredicts + d.mispredicts;
  into.btb_misses <- into.btb_misses + d.btb_misses;
  into.itlb_misses <- into.itlb_misses + d.itlb_misses;
  into.dtlb_misses <- into.dtlb_misses + d.dtlb_misses;
  into.l1i_accesses <- into.l1i_accesses + d.l1i_accesses;
  into.l1i_misses <- into.l1i_misses + d.l1i_misses;
  into.l1d_accesses <- into.l1d_accesses + d.l1d_accesses;
  into.l1d_misses <- into.l1d_misses + d.l1d_misses;
  into.l2_accesses <- into.l2_accesses + d.l2_accesses;
  into.l2_misses <- into.l2_misses + d.l2_misses;
  into.llc_accesses <- into.llc_accesses + d.llc_accesses;
  into.llc_misses <- into.llc_misses + d.llc_misses;
  into.coherence_misses <- into.coherence_misses + d.coherence_misses;
  into.bytes_read <- into.bytes_read + d.bytes_read;
  into.bytes_written <- into.bytes_written + d.bytes_written;
  into.slots_retiring <- into.slots_retiring +. d.slots_retiring;
  into.slots_frontend <- into.slots_frontend +. d.slots_frontend;
  into.slots_bad_spec <- into.slots_bad_spec +. d.slots_bad_spec;
  into.slots_backend <- into.slots_backend +. d.slots_backend

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den
let ipc t = if t.cycles = 0.0 then 0.0 else float_of_int t.insts /. t.cycles
let cpi t = if t.insts = 0 then 0.0 else t.cycles /. float_of_int t.insts
let branch_mpki t = if t.insts = 0 then 0.0 else 1000.0 *. ratio t.mispredicts t.insts
let branch_miss_rate t = ratio t.mispredicts t.branches
let itlb_mpki t = if t.insts = 0 then 0.0 else 1000.0 *. ratio t.itlb_misses t.insts
let dtlb_mpki t = if t.insts = 0 then 0.0 else 1000.0 *. ratio t.dtlb_misses t.insts
let l1i_miss_rate t = ratio t.l1i_misses t.l1i_accesses
let l1d_miss_rate t = ratio t.l1d_misses t.l1d_accesses
let l2_miss_rate t = ratio t.l2_misses t.l2_accesses
let llc_miss_rate t = ratio t.llc_misses t.llc_accesses

type topdown = { retiring : float; frontend : float; bad_speculation : float; backend : float }

let topdown t =
  let total = t.slots_retiring +. t.slots_frontend +. t.slots_bad_spec +. t.slots_backend in
  if total <= 0.0 then { retiring = 0.; frontend = 0.; bad_speculation = 0.; backend = 0. }
  else
    {
      retiring = t.slots_retiring /. total;
      frontend = t.slots_frontend /. total;
      bad_speculation = t.slots_bad_spec /. total;
      backend = t.slots_backend /. total;
    }

let topdown_cpi t =
  let frac = topdown t in
  let c = cpi t in
  {
    retiring = frac.retiring *. c;
    frontend = frac.frontend *. c;
    bad_speculation = frac.bad_speculation *. c;
    backend = frac.backend *. c;
  }
