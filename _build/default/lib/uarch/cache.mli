(** Set-associative cache with LRU (or tree-PLRU) replacement.

    Pure tag store: hit/miss bookkeeping only, no latency — the hierarchy in
    {!Memory} composes levels and assigns latencies and per-core counters.
    Lines are 64 bytes, matching the paper's working-set construction. *)

type replacement = Lru | Plru

type t

val line_bytes : int

val create : ?replacement:replacement -> size_bytes:int -> assoc:int -> unit -> t
(** [create ~size_bytes ~assoc ()]: number of sets is
    [size_bytes / (64 * assoc)], rounded up to a power of two (at least 1). *)

val size_bytes : t -> int
val assoc : t -> int
val sets : t -> int

val access : t -> int -> hit:bool ref -> unit
(** [access t addr ~hit] looks the line up, updates replacement state and
    fills on miss; [hit] is set accordingly. *)

val probe : t -> int -> bool
(** Lookup without updating replacement state or filling. *)

val invalidate : t -> int -> bool
(** Remove the line if present; returns whether it was present. *)

val flush : t -> unit
(** Empty the cache. *)
