(** Hardware stride prefetcher.

    Detects load streams with regular strides per instruction address and
    asks the hierarchy to fill upcoming lines (Intel-style L1/L2 streamers,
    §4.4.4: "hardware prefetchers detect load instructions with regular
    strides ... to load data into caches before they are needed"). *)

type t

val create : ?table_entries:int -> ?degree:int -> unit -> t
(** [degree] is how many lines ahead are prefetched on a confirmed stride. *)

val observe : t -> pc:int -> addr:int -> (int -> unit) -> unit
(** [observe t ~pc ~addr fill] records a demand access by the load at [pc];
    when a stable stride is confirmed, calls [fill] with each predicted
    future address. *)

val flush : t -> unit
