lib/uarch/prefetcher.mli:
