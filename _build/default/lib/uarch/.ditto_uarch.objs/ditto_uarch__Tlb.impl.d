lib/uarch/tlb.ml: Cache
