lib/uarch/counters.ml:
