lib/uarch/memory.ml: Array Cache Counters Hashtbl Platform Prefetcher Tlb
