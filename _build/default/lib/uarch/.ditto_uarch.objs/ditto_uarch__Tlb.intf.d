lib/uarch/tlb.mli:
