lib/uarch/counters.mli:
