lib/uarch/cache.mli:
