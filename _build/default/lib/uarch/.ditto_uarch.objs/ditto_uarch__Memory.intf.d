lib/uarch/memory.mli: Counters Platform
