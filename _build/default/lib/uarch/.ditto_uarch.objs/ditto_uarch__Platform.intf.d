lib/uarch/platform.mli:
