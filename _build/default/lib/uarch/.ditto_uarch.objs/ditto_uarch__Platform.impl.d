lib/uarch/platform.ml: Float List Printf
