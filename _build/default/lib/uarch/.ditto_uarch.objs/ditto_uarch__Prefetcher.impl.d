lib/uarch/prefetcher.ml: Array
