lib/uarch/core_model.ml: Array Block Branch_pred Cache Counters Ditto_isa Float Iclass Iform Memory Platform
