lib/uarch/core_model.mli: Counters Ditto_isa Ditto_util Memory Platform
