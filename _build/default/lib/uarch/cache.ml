type replacement = Lru | Plru

let line_bytes = 64

type t = {
  replacement : replacement;
  sets : int;
  assoc : int;
  size_bytes : int;
  tags : int array; (* sets * assoc; -1 = invalid *)
  stamps : int array; (* LRU timestamps, parallel to [tags] *)
  plru : int array; (* per-set tree bits *)
  mutable tick : int;
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ?(replacement = Lru) ~size_bytes ~assoc () =
  if assoc <= 0 then invalid_arg "Cache.create: assoc";
  let sets = pow2_at_least (max 1 (size_bytes / (line_bytes * assoc))) 1 in
  {
    replacement;
    sets;
    assoc;
    size_bytes;
    tags = Array.make (sets * assoc) (-1);
    stamps = Array.make (sets * assoc) 0;
    plru = Array.make sets 0;
    tick = 0;
  }

let size_bytes t = t.size_bytes
let assoc t = t.assoc
let sets t = t.sets

let set_of t addr = (addr / line_bytes) land (t.sets - 1)
let tag_of addr = addr / line_bytes

let find_way t set tag =
  let base = set * t.assoc in
  let rec go w = if w >= t.assoc then -1 else if t.tags.(base + w) = tag then w else go (w + 1) in
  go 0

(* Tree-PLRU: follow the direction bits down a (log2 assoc)-deep tree to the
   victim leaf; touching a way repoints the bits on its path away from it. *)
let plru_touch t set way =
  let levels = ref 1 and tmp = ref t.assoc in
  while !tmp > 2 do
    incr levels;
    tmp := !tmp / 2
  done;
  let bits = ref t.plru.(set) in
  let node = ref 0 in
  for level = !levels - 1 downto 0 do
    let dir = (way lsr level) land 1 in
    (* Point away from the accessed way. *)
    if dir = 1 then bits := !bits land lnot (1 lsl !node) else bits := !bits lor (1 lsl !node);
    node := (2 * !node) + 1 + dir
  done;
  t.plru.(set) <- !bits

let plru_victim t set =
  let levels = ref 1 and tmp = ref t.assoc in
  while !tmp > 2 do
    incr levels;
    tmp := !tmp / 2
  done;
  let bits = t.plru.(set) in
  let node = ref 0 and way = ref 0 in
  for _ = 1 to !levels do
    let dir = (bits lsr !node) land 1 in
    way := (2 * !way) + dir;
    node := (2 * !node) + 1 + dir
  done;
  !way

let lru_victim t set =
  let base = set * t.assoc in
  let victim = ref 0 and oldest = ref max_int in
  for w = 0 to t.assoc - 1 do
    if t.tags.(base + w) = -1 then begin
      (* Prefer an invalid way outright. *)
      if !oldest > -1 then begin
        oldest := -1;
        victim := w
      end
    end
    else if !oldest >= 0 && t.stamps.(base + w) < !oldest then begin
      oldest := t.stamps.(base + w);
      victim := w
    end
  done;
  !victim

let is_pow2 n = n land (n - 1) = 0

let touch t set way =
  t.tick <- t.tick + 1;
  t.stamps.((set * t.assoc) + way) <- t.tick;
  if t.replacement = Plru && is_pow2 t.assoc && t.assoc >= 2 then plru_touch t set way

let access t addr ~hit =
  let set = set_of t addr and tag = tag_of addr in
  let way = find_way t set tag in
  if way >= 0 then begin
    hit := true;
    touch t set way
  end
  else begin
    hit := false;
    let victim =
      if t.replacement = Plru && is_pow2 t.assoc && t.assoc >= 2 then begin
        let base = set * t.assoc in
        let rec first_invalid w =
          if w >= t.assoc then plru_victim t set
          else if t.tags.(base + w) = -1 then w
          else first_invalid (w + 1)
        in
        first_invalid 0
      end
      else lru_victim t set
    in
    t.tags.((set * t.assoc) + victim) <- tag;
    touch t set victim
  end

let probe t addr =
  let set = set_of t addr and tag = tag_of addr in
  find_way t set tag >= 0

let invalidate t addr =
  let set = set_of t addr and tag = tag_of addr in
  let way = find_way t set tag in
  if way >= 0 then begin
    t.tags.((set * t.assoc) + way) <- -1;
    true
  end
  else false

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  Array.fill t.plru 0 (Array.length t.plru) 0;
  t.tick <- 0
