(** Tournament branch predictor (per-branch local-history + gshare with a
    meta chooser, Alpha 21264-style) and a branch target buffer.

    The paper observes that taken/not-taken rates, transition rates,
    instruction locality and static branch count all drive misprediction
    behaviour (§4.4.3); a gshare table captures rate/transition effects
    while the finite BTB captures code-footprint effects. *)

type t

val create : ?history_bits:int -> entries:int -> btb_entries:int -> unit -> t
(** [entries] and [btb_entries] are rounded up to powers of two. *)

val predict_and_update : t -> pc:int -> taken:bool -> [ `Correct | `Mispredict | `Btb_miss ]
(** One prediction step for a conditional branch at [pc] whose actual
    outcome is [taken]: returns the frontend event and trains predictor and
    BTB. A [`Btb_miss] is a taken branch whose target was unknown — a
    cheaper resteer than a full mispredict. *)

val note_unconditional : t -> pc:int -> [ `Correct | `Btb_miss ]
(** Unconditional jumps/calls/returns miss only in the BTB. *)

val flush : t -> unit
