open Ditto_isa

type t = {
  mem : Memory.t;
  plat : Platform.t;
  core : int;
  bp : Branch_pred.t;
  reg_ready : float array;
  port_free : float array;
  rob : float array;
  mutable rob_pos : int;
  mshr : float array;
  mutable next_issue : float;
  mutable fetch_avail : float;
  mutable resteer_until : float;
  mutable max_done : float;
  mutable last_fetch_line : int;
  mutable last_lock_done : float;
  mutable width_factor : float;
}

let create mem ~core =
  let plat = Memory.platform mem in
  {
    mem;
    plat;
    core;
    bp =
      Branch_pred.create ~entries:plat.Platform.predictor_entries
        ~btb_entries:plat.Platform.btb_entries ();
    reg_ready = Array.make Block.num_regs 0.0;
    port_free = Array.make Iform.port_count 0.0;
    rob = Array.make plat.Platform.rob_size 0.0;
    rob_pos = 0;
    mshr = Array.make 10 0.0;
    next_issue = 0.0;
    fetch_avail = 0.0;
    resteer_until = 0.0;
    max_done = 0.0;
    last_fetch_line = -1;
    last_lock_done = 0.0;
    width_factor = 1.0;
  }

let counters t = Memory.counters t.mem t.core
let platform t = t.plat
let set_width_factor t f = t.width_factor <- Float.max 0.1 f
let now t = Float.max t.next_issue t.max_done
let drain t = t.next_issue <- now t

let effective_width t = float_of_int t.plat.Platform.issue_width *. t.width_factor

let choose_port t mask =
  let best = ref 0 and best_t = ref infinity in
  for p = 0 to Iform.port_count - 1 do
    if mask land (1 lsl p) <> 0 && t.port_free.(p) < !best_t then begin
      best_t := t.port_free.(p);
      best := p
    end
  done;
  !best

(* Off-core misses contend for a finite set of miss-status registers,
   bounding memory-level parallelism. Returns the adjusted start time. *)
let mshr_admit t start latency =
  let best = ref 0 and best_t = ref infinity in
  for i = 0 to Array.length t.mshr - 1 do
    if t.mshr.(i) < !best_t then begin
      best_t := t.mshr.(i);
      best := i
    end
  done;
  let start = Float.max start !best_t in
  t.mshr.(!best) <- start +. latency;
  start

let exec_rep_string t ~width addr shared ~write_only ~count start =
  let ctr = Memory.counters t.mem t.core in
  let chunks = max 1 (count / Cache.line_bytes) in
  let issue = ref start and done_t = ref start in
  for i = 0 to chunks - 1 do
    let a = addr + (Cache.line_bytes * i) in
    let rl =
      if write_only then 1
      else Memory.access_data t.mem ~core:t.core ~addr:a ~write:false ~shared
    in
    ignore (Memory.access_data t.mem ~core:t.core ~addr:(a + 0x40000) ~write:true ~shared:false);
    done_t := Float.max !done_t (!issue +. float_of_int rl);
    issue := !issue +. (2.0 /. width);
    ctr.Counters.slots_retiring <- ctr.Counters.slots_retiring +. 2.0;
    ctr.Counters.uops <- ctr.Counters.uops + 2
  done;
  (!issue, !done_t)

let exec_block t ~rng (block : Block.t) ~iterations =
  let width = effective_width t in
  let plat = t.plat in
  let ctr = Memory.counters t.mem t.core in
  let ntemps = Array.length block.Block.temps in
  let before = now t in
  for _iteration = 0 to iterations - 1 do
    for k = 0 to ntemps - 1 do
      let temp = block.Block.temps.(k) in
      let iform = temp.Block.iform in
      let pc = block.Block.addrs.(k) in
      let base = t.next_issue in
      (* Instruction fetch: one i-cache access per new line. *)
      let line = pc land lnot (Cache.line_bytes - 1) in
      if line <> t.last_fetch_line then begin
        t.last_fetch_line <- line;
        let bubble = Memory.access_inst t.mem ~core:t.core ~addr:pc in
        if bubble > 0 then t.fetch_avail <- Float.max t.fetch_avail base +. float_of_int bubble
      end;
      let f = Float.max base t.fetch_avail in
      (* Attribute the fetch gap: resteer shadow counts as bad speculation. *)
      let gap = f -. base in
      if gap > 0.0 then begin
        let bad = Float.max 0.0 (Float.min f t.resteer_until -. base) in
        ctr.Counters.slots_bad_spec <- ctr.Counters.slots_bad_spec +. (bad *. width);
        ctr.Counters.slots_frontend <- ctr.Counters.slots_frontend +. ((gap -. bad) *. width)
      end;
      (* Register dependencies. *)
      let ready = ref f in
      let srcs = temp.Block.srcs in
      for s = 0 to Array.length srcs - 1 do
        let r = srcs.(s) in
        if r >= 0 && t.reg_ready.(r) > !ready then ready := t.reg_ready.(r)
      done;
      (* ROB backpressure: cannot dispatch past the window. *)
      let rob_head = t.rob.(t.rob_pos) in
      if rob_head > !ready then ready := rob_head;
      (* Execution port. *)
      let port = choose_port t iform.Iform.ports in
      if t.port_free.(port) > !ready then ready := t.port_free.(port);
      let start = !ready in
      ctr.Counters.slots_backend <- ctr.Counters.slots_backend +. ((start -. f) *. width);
      let klass = iform.Iform.klass in
      ctr.Counters.insts <- ctr.Counters.insts + 1;
      let issue_after, done_t =
        if klass = Iclass.Rep_string then begin
          let addr, shared = Block.resolve_mem ~rng temp in
          let addr = if addr < 0 then 0 else addr in
          let write_only = temp.Block.srcs = [||] in
          exec_rep_string t ~width addr shared ~write_only
            ~count:(max Cache.line_bytes temp.Block.rep_count)
            start
        end
        else begin
          (* Memory operand. *)
          let mem_lat =
            match temp.Block.mem with
            | Block.No_mem -> 0
            | _ ->
                let addr, shared = Block.resolve_mem ~rng temp in
                let write = Iclass.is_memory_write klass && not (Iclass.is_memory_read klass) in
                let lat = Memory.access_data t.mem ~core:t.core ~addr ~write ~shared in
                if klass = Iclass.Lock_rmw then
                  ignore (Memory.access_data t.mem ~core:t.core ~addr ~write:true ~shared)
                else ();
                if write then 0 (* store latency hidden by the store buffer *) else lat
          in
          let start =
            if mem_lat > plat.Platform.lat_l2 then mshr_admit t start (float_of_int mem_lat)
            else start
          in
          let start =
            if klass = Iclass.Lock_rmw then begin
              let s = Float.max start t.last_lock_done in
              s
            end
            else start
          in
          let exec_lat = float_of_int (iform.Iform.latency + mem_lat) in
          let done_t = start +. Float.max 1.0 exec_lat in
          if klass = Iclass.Lock_rmw then t.last_lock_done <- done_t;
          (* Port occupancy: dividers are unpipelined. *)
          let occupancy =
            match klass with
            | Iclass.Int_div | Iclass.Float_div -> float_of_int iform.Iform.latency *. 0.6
            | _ -> 1.0
          in
          t.port_free.(port) <- start +. occupancy;
          ctr.Counters.uops <- ctr.Counters.uops + iform.Iform.uops;
          ctr.Counters.slots_retiring <-
            ctr.Counters.slots_retiring +. float_of_int iform.Iform.uops;
          (start +. (float_of_int iform.Iform.uops /. width), done_t)
        end
      in
      (* Branch resolution. *)
      (match temp.Block.branch with
      | Some spec when klass = Iclass.Branch_cond ->
          ctr.Counters.branches <- ctr.Counters.branches + 1;
          let seq = temp.Block.branch_seq in
          temp.Block.branch_seq <- seq + 1;
          let outcome =
            Block.branch_outcome ~m:spec.Block.m ~n:spec.Block.n seq <> spec.Block.invert
          in
          (match Branch_pred.predict_and_update t.bp ~pc ~taken:outcome with
          | `Correct -> ()
          | `Mispredict ->
              ctr.Counters.mispredicts <- ctr.Counters.mispredicts + 1;
              let redirect = done_t +. float_of_int plat.Platform.mispredict_penalty in
              t.fetch_avail <- Float.max t.fetch_avail redirect;
              t.resteer_until <- Float.max t.resteer_until redirect
          | `Btb_miss ->
              ctr.Counters.btb_misses <- ctr.Counters.btb_misses + 1;
              let redirect = start +. float_of_int plat.Platform.btb_miss_penalty in
              t.fetch_avail <- Float.max t.fetch_avail redirect)
      | Some _ | None ->
          if Iclass.is_control klass then begin
            ctr.Counters.branches <- ctr.Counters.branches + 1;
            match Branch_pred.note_unconditional t.bp ~pc with
            | `Correct -> ()
            | `Btb_miss ->
                ctr.Counters.btb_misses <- ctr.Counters.btb_misses + 1;
                let redirect = start +. float_of_int plat.Platform.btb_miss_penalty in
                t.fetch_avail <- Float.max t.fetch_avail redirect
          end);
      (* Writeback and retirement bookkeeping. *)
      if temp.Block.dst >= 0 then t.reg_ready.(temp.Block.dst) <- done_t;
      t.rob.(t.rob_pos) <- done_t;
      t.rob_pos <- (t.rob_pos + 1) mod Array.length t.rob;
      if done_t > t.max_done then t.max_done <- done_t;
      t.next_issue <- Float.max t.next_issue issue_after
    done
  done;
  ctr.Counters.cycles <- ctr.Counters.cycles +. Float.max 0.0 (now t -. before)
