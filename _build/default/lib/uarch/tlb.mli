(** Translation lookaside buffers.

    The paper's top-down tree (Fig. 2) attributes iTLB misses to the
    frontend and data-side translation to the backend; services with large
    code and data footprints pay measurable walk time. Modelled as
    set-associative page-granular caches with a two-level structure (L1 TLB
    backed by a shared STLB) and a constant walk cost on full misses. *)

type t

val create : ?l1_entries:int -> ?stlb_entries:int -> ?walk_cycles:int -> unit -> t
(** Defaults: 64-entry 4-way L1, 1536-entry 12-way STLB, 30-cycle walk
    (Skylake-like). *)

val page_bytes : int
(** 4KB pages. *)

val access : t -> int -> int
(** [access t addr] translates the page containing [addr]; returns the
    added latency in cycles: 0 (L1 hit), a small STLB penalty, or the full
    walk cost. Fills on miss. *)

val lookups : t -> int
val misses : t -> int
(** Full misses (page walks). *)

val flush : t -> unit
