type t = {
  plat : Platform.t;
  n : int;
  l1i : Cache.t array;
  l1d : Cache.t array;
  l2 : Cache.t array;
  llc : Cache.t;
  prefetchers : Prefetcher.t array;
  itlbs : Tlb.t array;
  dtlbs : Tlb.t array;
  ctrs : Counters.t array;
  (* Coherence directory for shared lines: line -> (owner core, dirty). *)
  directory : (int, int * bool) Hashtbl.t;
  hit_scratch : bool ref;
}

let create (plat : Platform.t) ~ncores =
  let mk_l1 bytes = Cache.create ~size_bytes:bytes ~assoc:plat.Platform.l1_assoc () in
  {
    plat;
    n = ncores;
    l1i = Array.init ncores (fun _ -> mk_l1 plat.Platform.l1i_bytes);
    l1d = Array.init ncores (fun _ -> mk_l1 plat.Platform.l1d_bytes);
    l2 =
      Array.init ncores (fun _ ->
          Cache.create ~size_bytes:plat.Platform.l2_bytes ~assoc:plat.Platform.l2_assoc ());
    llc =
      Cache.create ~replacement:Cache.Plru ~size_bytes:plat.Platform.llc_bytes
        ~assoc:plat.Platform.llc_assoc ();
    prefetchers = Array.init ncores (fun _ -> Prefetcher.create ());
    itlbs = Array.init ncores (fun _ -> Tlb.create ~l1_entries:128 ());
    dtlbs = Array.init ncores (fun _ -> Tlb.create ());
    ctrs = Array.init ncores (fun _ -> Counters.create ());
    directory = Hashtbl.create 4096;
    hit_scratch = ref false;
  }

let ncores t = t.n
let platform t = t.plat
let counters t core = t.ctrs.(core)

let set_counter t core ctr = t.ctrs.(core) <- ctr

let line_of addr = addr land lnot (Cache.line_bytes - 1)

let prefetch_fill t core addr =
  if not (Cache.probe t.l2.(core) addr) then begin
    Cache.access t.llc addr ~hit:t.hit_scratch;
    Cache.access t.l2.(core) addr ~hit:t.hit_scratch
  end

(* Invalidate a shared line in every other core's private caches (the
   directory does not track exact sharers; core counts are small). *)
let invalidate_others t core addr =
  for c = 0 to t.n - 1 do
    if c <> core then begin
      ignore (Cache.invalidate t.l1d.(c) addr);
      ignore (Cache.invalidate t.l2.(c) addr)
    end
  done

let access_data t ~core ~addr ~write ~shared =
  let p = t.plat in
  let ctr = t.ctrs.(core) in
  let line = line_of addr in
  (* Coherence: a shared line dirty in another core forces a miss in the
     requester's private caches (the copy is stale). *)
  let coherence_steal =
    shared
    &&
    match Hashtbl.find_opt t.directory line with
    | Some (owner, dirty) -> owner <> core && (dirty || write)
    | None -> false
  in
  if coherence_steal then begin
    ignore (Cache.invalidate t.l1d.(core) line);
    ignore (Cache.invalidate t.l2.(core) line)
  end;
  ctr.Counters.l1d_accesses <- ctr.Counters.l1d_accesses + 1;
  if write then ctr.Counters.bytes_written <- ctr.Counters.bytes_written + 8
  else ctr.Counters.bytes_read <- ctr.Counters.bytes_read + 8;
  let tlb_lat = Tlb.access t.dtlbs.(core) addr in
  if tlb_lat >= 30 then ctr.Counters.dtlb_misses <- ctr.Counters.dtlb_misses + 1;
  let hit = t.hit_scratch in
  Cache.access t.l1d.(core) line ~hit;
  let latency =
    if !hit then p.Platform.lat_l1 + tlb_lat
    else begin
      ctr.Counters.l1d_misses <- ctr.Counters.l1d_misses + 1;
      ctr.Counters.l2_accesses <- ctr.Counters.l2_accesses + 1;
      Prefetcher.observe t.prefetchers.(core) ~pc:addr ~addr:line (prefetch_fill t core);
      Cache.access t.l2.(core) line ~hit;
      if !hit then p.Platform.lat_l2 + tlb_lat
      else begin
        ctr.Counters.l2_misses <- ctr.Counters.l2_misses + 1;
        ctr.Counters.llc_accesses <- ctr.Counters.llc_accesses + 1;
        Cache.access t.llc line ~hit;
        if !hit then
          if coherence_steal then begin
            ctr.Counters.coherence_misses <- ctr.Counters.coherence_misses + 1;
            p.Platform.lat_llc + 12 + tlb_lat (* cross-core snoop/transfer *)
          end
          else p.Platform.lat_llc + tlb_lat
        else begin
          ctr.Counters.llc_misses <- ctr.Counters.llc_misses + 1;
          p.Platform.lat_mem + tlb_lat
        end
      end
    end
  in
  (* Update directory ownership for shared lines. *)
  if shared then begin
    if write then begin
      (match Hashtbl.find_opt t.directory line with
      | Some (owner, _) when owner <> core -> invalidate_others t core line
      | Some _ | None -> ());
      Hashtbl.replace t.directory line (core, true)
    end
    else begin
      match Hashtbl.find_opt t.directory line with
      | Some (owner, true) when owner <> core ->
          (* Downgrade: the reader now has a clean copy. *)
          Hashtbl.replace t.directory line (core, false)
      | Some _ -> ()
      | None -> Hashtbl.replace t.directory line (core, false)
    end
  end;
  latency

let access_inst t ~core ~addr =
  let p = t.plat in
  let ctr = t.ctrs.(core) in
  let line = line_of addr in
  ctr.Counters.l1i_accesses <- ctr.Counters.l1i_accesses + 1;
  let tlb_lat = Tlb.access t.itlbs.(core) addr in
  if tlb_lat >= 30 then ctr.Counters.itlb_misses <- ctr.Counters.itlb_misses + 1;
  let hit = t.hit_scratch in
  Cache.access t.l1i.(core) line ~hit;
  if !hit then tlb_lat
  else begin
    ctr.Counters.l1i_misses <- ctr.Counters.l1i_misses + 1;
    ctr.Counters.l2_accesses <- ctr.Counters.l2_accesses + 1;
    Cache.access t.l2.(core) line ~hit;
    if !hit then p.Platform.lat_l2 - p.Platform.lat_l1 + tlb_lat
    else begin
      ctr.Counters.l2_misses <- ctr.Counters.l2_misses + 1;
      ctr.Counters.llc_accesses <- ctr.Counters.llc_accesses + 1;
      Cache.access t.llc line ~hit;
      if !hit then p.Platform.lat_llc - p.Platform.lat_l1 + tlb_lat
      else begin
        ctr.Counters.llc_misses <- ctr.Counters.llc_misses + 1;
        p.Platform.lat_mem - p.Platform.lat_l1 + tlb_lat
      end
    end
  end

let flush t =
  Array.iter Cache.flush t.l1i;
  Array.iter Cache.flush t.l1d;
  Array.iter Cache.flush t.l2;
  Cache.flush t.llc;
  Array.iter Prefetcher.flush t.prefetchers;
  Array.iter Tlb.flush t.itlbs;
  Array.iter Tlb.flush t.dtlbs;
  Hashtbl.reset t.directory
