type summary = {
  count : int;
  mean : float;
  std : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let pp_summary fmt s =
  Format.fprintf fmt "n=%d mean=%.4g std=%.4g p50=%.4g p95=%.4g p99=%.4g" s.count
    s.mean s.std s.p50 s.p95 s.p99

type t = {
  mutable data : float array;
  mutable len : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable sorted : bool;
}

let create () =
  { data = Array.make 64 0.0; len = 0; sum = 0.0; sumsq = 0.0; sorted = true }

let add t x =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * t.len) 0.0 in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.sum <- t.sum +. x;
  t.sumsq <- t.sumsq +. (x *. x);
  t.sorted <- false

let count t = t.len
let mean t = if t.len = 0 then 0.0 else t.sum /. float_of_int t.len

let variance t =
  if t.len < 2 then 0.0
  else begin
    let n = float_of_int t.len in
    let m = t.sum /. n in
    Float.max 0.0 ((t.sumsq /. n) -. (m *. m))
  end

let std t = sqrt (variance t)

let sort_in_place t =
  if not t.sorted then begin
    let live = Array.sub t.data 0 t.len in
    Array.sort compare live;
    Array.blit live 0 t.data 0 t.len;
    t.sorted <- true
  end

let percentile_sorted data len q =
  if len = 0 then invalid_arg "Stats.percentile: empty";
  let q = Float.max 0.0 (Float.min 100.0 q) in
  let rank = q /. 100.0 *. float_of_int (len - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then data.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    data.(lo) +. (frac *. (data.(hi) -. data.(lo)))
  end

let percentile t q =
  sort_in_place t;
  percentile_sorted t.data t.len q

let summary t =
  sort_in_place t;
  if t.len = 0 then
    { count = 0; mean = 0.; std = 0.; min = 0.; max = 0.; p50 = 0.; p95 = 0.; p99 = 0. }
  else
    {
      count = t.len;
      mean = mean t;
      std = std t;
      min = t.data.(0);
      max = t.data.(t.len - 1);
      p50 = percentile_sorted t.data t.len 50.0;
      p95 = percentile_sorted t.data t.len 95.0;
      p99 = percentile_sorted t.data t.len 99.0;
    }

let to_array t = Array.sub t.data 0 t.len

let clear t =
  t.len <- 0;
  t.sum <- 0.0;
  t.sumsq <- 0.0;
  t.sorted <- true

let mean_of xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let percentile_of arr q =
  let copy = Array.copy arr in
  Array.sort compare copy;
  percentile_sorted copy (Array.length copy) q

let ks_distance a b =
  if Array.length a = 0 || Array.length b = 0 then invalid_arg "Stats.ks_distance: empty";
  let a = Array.copy a and b = Array.copy b in
  Array.sort compare a;
  Array.sort compare b;
  let na = Array.length a and nb = Array.length b in
  let fa = float_of_int na and fb = float_of_int nb in
  (* Walk the merged value sequence; at each distinct value compare the two
     empirical CDFs after consuming all elements <= that value (ties must
     advance both sides together). *)
  let rec go i j best =
    if i >= na && j >= nb then best
    else begin
      let v =
        if i >= na then b.(j)
        else if j >= nb then a.(i)
        else Float.min a.(i) b.(j)
      in
      let rec eat arr n k = if k < n && arr.(k) <= v then eat arr n (k + 1) else k in
      let i = eat a na i and j = eat b nb j in
      let d = Float.abs ((float_of_int i /. fa) -. (float_of_int j /. fb)) in
      go i j (Float.max best d)
    end
  in
  go 0 0 0.0

let mape ~actual ~predicted =
  if Array.length actual <> Array.length predicted then
    invalid_arg "Stats.mape: length mismatch";
  let total = ref 0.0 and n = ref 0 in
  Array.iteri
    (fun i a ->
      if a <> 0.0 then begin
        total := !total +. (Float.abs (predicted.(i) -. a) /. Float.abs a);
        incr n
      end)
    actual;
  if !n = 0 then 0.0 else 100.0 *. !total /. float_of_int !n
