(** Deterministic pseudo-random number generation.

    All stochastic choices in the simulator flow through this module so that
    experiments are reproducible from a single root seed. The generator is
    SplitMix64 (Steele et al., OOPSLA'14): fast, 64-bit, and splittable, so
    independent subsystems can derive independent streams from one root. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : t -> t
(** [split t] derives an independent generator; advances [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future draws). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [\[lo, hi)]. Requires [lo < hi]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
