type t = { tbl : (int, int ref) Hashtbl.t; mutable total : int }

let create () = { tbl = Hashtbl.create 64; total = 0 }

let add ?(count = 1) t key =
  (match Hashtbl.find_opt t.tbl key with
  | Some r -> r := !r + count
  | None -> Hashtbl.add t.tbl key (ref count));
  t.total <- t.total + count

let count t key = match Hashtbl.find_opt t.tbl key with Some r -> !r | None -> 0
let total t = t.total

let bindings t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let to_discrete t =
  Dist.discrete (List.map (fun (k, c) -> (k, float_of_int c)) (bindings t))

let merge a b =
  let out = create () in
  List.iter (fun (k, c) -> add ~count:c out k) (bindings a);
  List.iter (fun (k, c) -> add ~count:c out k) (bindings b);
  out

let log2_bin v =
  let v = max 1 v in
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 v

let max_rate_bin = 10

let log2_bin_rate r =
  if r <= 0.0 then max_rate_bin
  else if r >= 1.0 then 0
  else begin
    let b = int_of_float (Float.round (-.Float.log2 r)) in
    max 0 (min max_rate_bin b)
  end

let rate_of_log2_bin b = 2.0 ** float_of_int (-b)
