type linkage = Single | Complete | Average

(* Cluster-to-cluster distance from a precomputed item-pair matrix. *)
let cluster_distance linkage dmat ca cb =
  let acc = ref (match linkage with Single -> infinity | Complete -> 0.0 | Average -> 0.0) in
  let n = ref 0 in
  List.iter
    (fun i ->
      List.iter
        (fun j ->
          let d = dmat.(i).(j) in
          incr n;
          match linkage with
          | Single -> acc := Float.min !acc d
          | Complete -> acc := Float.max !acc d
          | Average -> acc := !acc +. d)
        cb)
    ca;
  match linkage with
  | Single | Complete -> !acc
  | Average -> if !n = 0 then 0.0 else !acc /. float_of_int !n

let run ?(linkage = Average) ~distance ~stop items =
  let n = Array.length items in
  if n = 0 then []
  else begin
    let dmat = Array.make_matrix n n 0.0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let d = distance items.(i) items.(j) in
        dmat.(i).(j) <- d;
        dmat.(j).(i) <- d
      done
    done;
    (* Clusters hold item indices. *)
    let clusters = ref (List.init n (fun i -> [ i ])) in
    let continue = ref true in
    while !continue && List.length !clusters > 1 do
      let cs = Array.of_list !clusters in
      let m = Array.length cs in
      let best = ref (0, 1, infinity) in
      for i = 0 to m - 1 do
        for j = i + 1 to m - 1 do
          let d = cluster_distance linkage dmat cs.(i) cs.(j) in
          let _, _, bd = !best in
          if d < bd then best := (i, j, d)
        done
      done;
      let bi, bj, bd = !best in
      if stop (List.length !clusters) bd then continue := false
      else begin
        let merged = cs.(bi) @ cs.(bj) in
        let rest = ref [] in
        Array.iteri (fun k c -> if k <> bi && k <> bj then rest := c :: !rest) cs;
        clusters := merged :: !rest
      end
    done;
    List.map (fun c -> List.map (fun i -> items.(i)) c) !clusters
  end

let agglomerative ?linkage ~distance ~threshold items =
  run ?linkage ~distance ~stop:(fun _ d -> d > threshold) items

let agglomerative_k ?linkage ~distance ~k items =
  run ?linkage ~distance ~stop:(fun ncl _ -> ncl <= k) items
