lib/util/jsonx.mli:
