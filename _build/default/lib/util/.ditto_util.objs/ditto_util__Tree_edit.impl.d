lib/util/tree_edit.ml: Array Float Hashtbl List
