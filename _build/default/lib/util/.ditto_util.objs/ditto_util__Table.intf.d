lib/util/table.mli:
