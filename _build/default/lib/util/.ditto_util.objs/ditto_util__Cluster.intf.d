lib/util/cluster.mli:
