lib/util/rng.mli:
