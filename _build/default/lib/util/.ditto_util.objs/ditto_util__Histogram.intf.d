lib/util/histogram.mli: Dist
