lib/util/tree_edit.mli:
