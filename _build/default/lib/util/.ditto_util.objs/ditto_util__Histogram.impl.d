lib/util/histogram.ml: Dist Float Hashtbl List
