lib/util/cluster.ml: Array Float List
