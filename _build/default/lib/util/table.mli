(** Fixed-width text tables for the benchmark harness output. *)

type align = Left | Right

val render : ?align:align -> header:string list -> string list list -> string
(** Render rows under a header with per-column widths; columns are separated
    by two spaces and a rule follows the header. *)

val print : ?align:align -> title:string -> header:string list -> string list list -> unit
(** [render] preceded by a title banner, written to stdout. *)

val fmt_float : float -> string
(** Compact float formatting for table cells (4 significant digits). *)

val fmt_pct : float -> string
(** Percentage with one decimal and a trailing [%]. *)
