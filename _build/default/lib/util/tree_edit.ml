type 'a tree = Node of 'a * 'a tree list

let node label children = Node (label, children)
let leaf label = Node (label, [])

let rec size (Node (_, cs)) = 1 + List.fold_left (fun a c -> a + size c) 0 cs
let rec depth (Node (_, cs)) = 1 + List.fold_left (fun a c -> max a (depth c)) 0 cs

(* Post-order indexing with leftmost-leaf descendants, per Zhang & Shasha
   (1989). [labels.(i)] is the label of postorder node i, [lld.(i)] the
   postorder index of the leftmost leaf of the subtree rooted at i, and
   [keyroots] the standard keyroot set. *)
type 'a indexed = { labels : 'a array; lld : int array; keyroots : int list }

let index tree =
  let labels = ref [] and lld = ref [] in
  let counter = ref 0 in
  let rec go (Node (label, children)) =
    let child_llds = List.map go children in
    let my_index = !counter in
    incr counter;
    let my_lld = match child_llds with [] -> my_index | first :: _ -> first in
    labels := label :: !labels;
    lld := my_lld :: !lld;
    my_lld
  in
  ignore (go tree);
  let labels = Array.of_list (List.rev !labels) in
  let lld = Array.of_list (List.rev !lld) in
  let n = Array.length labels in
  (* Keyroots: nodes with no left sibling on the path to the root, i.e. the
     highest node for each distinct leftmost-leaf value. *)
  let last_for_lld = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    Hashtbl.replace last_for_lld lld.(i) i
  done;
  let keyroots =
    Hashtbl.fold (fun _ i acc -> i :: acc) last_for_lld [] |> List.sort compare
  in
  { labels; lld; keyroots }

let distance ?(cost_ins = fun _ -> 1.0) ?(cost_del = fun _ -> 1.0)
    ?(cost_sub = fun a b -> if a = b then 0.0 else 1.0) t1 t2 =
  let a = index t1 and b = index t2 in
  let n = Array.length a.labels and m = Array.length b.labels in
  let td = Array.make_matrix n m 0.0 in
  let tree_dist i j =
    let li = a.lld.(i) and lj = b.lld.(j) in
    let rows = i - li + 2 and cols = j - lj + 2 in
    let fd = Array.make_matrix rows cols 0.0 in
    for x = 1 to rows - 1 do
      fd.(x).(0) <- fd.(x - 1).(0) +. cost_del a.labels.(li + x - 1)
    done;
    for y = 1 to cols - 1 do
      fd.(0).(y) <- fd.(0).(y - 1) +. cost_ins b.labels.(lj + y - 1)
    done;
    for x = 1 to rows - 1 do
      let node_a = li + x - 1 in
      for y = 1 to cols - 1 do
        let node_b = lj + y - 1 in
        if a.lld.(node_a) = li && b.lld.(node_b) = lj then begin
          let d =
            Float.min
              (Float.min
                 (fd.(x - 1).(y) +. cost_del a.labels.(node_a))
                 (fd.(x).(y - 1) +. cost_ins b.labels.(node_b)))
              (fd.(x - 1).(y - 1) +. cost_sub a.labels.(node_a) b.labels.(node_b))
          in
          fd.(x).(y) <- d;
          td.(node_a).(node_b) <- d
        end
        else begin
          let xa = a.lld.(node_a) - li and yb = b.lld.(node_b) - lj in
          fd.(x).(y) <-
            Float.min
              (Float.min
                 (fd.(x - 1).(y) +. cost_del a.labels.(node_a))
                 (fd.(x).(y - 1) +. cost_ins b.labels.(node_b)))
              (fd.(xa).(yb) +. td.(node_a).(node_b))
        end
      done
    done
  in
  List.iter (fun i -> List.iter (fun j -> tree_dist i j) b.keyroots) a.keyroots;
  td.(n - 1).(m - 1)

let normalized_distance t1 t2 =
  let d = distance t1 t2 in
  d /. float_of_int (max (size t1) (size t2))
