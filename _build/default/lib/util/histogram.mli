(** Integer-keyed counting histograms and log2-quantized variants.

    Ditto quantizes branch taken/transition rates and dependency distances
    on a log2 scale (§4.4.3, §4.4.6); these helpers implement that binning. *)

type t
(** Counting histogram over integer keys. *)

val create : unit -> t
val add : ?count:int -> t -> int -> unit
val count : t -> int -> int
val total : t -> int
val bindings : t -> (int * int) list
(** Sorted by key ascending. *)

val to_discrete : t -> int Dist.discrete
(** Weighted discrete distribution over observed keys.
    Raises [Invalid_argument] if the histogram is empty. *)

val merge : t -> t -> t
(** Pointwise sum of two histograms. *)

val log2_bin : int -> int
(** [log2_bin v] is [floor (log2 (max 1 v))]: bin index for a positive
    quantity quantized in powers of two. *)

val log2_bin_rate : float -> int
(** [log2_bin_rate r] quantizes a rate in (0, 1] to bin [b] such that the
    rate is approximately [2^-b]; clamped to bins 0..10 per the paper's
    2^-1 .. 2^-10 scale (bin 0 means rate ~1). *)

val rate_of_log2_bin : int -> float
(** Inverse of [log2_bin_rate]: bin [b] -> [2^-b]. *)
