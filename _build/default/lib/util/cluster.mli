(** Agglomerative (hierarchical) clustering.

    Ditto clusters threads by call-graph similarity (§4.3.2) and x86 iforms
    by hardware-resource similarity (§4.4.2) using agglomerative clustering
    because the number of clusters is unknown in advance. *)

type linkage = Single | Complete | Average

val agglomerative :
  ?linkage:linkage -> distance:('a -> 'a -> float) -> threshold:float -> 'a array -> 'a list list
(** [agglomerative ~distance ~threshold items] merges the closest pair of
    clusters until the minimum inter-cluster distance exceeds [threshold].
    Returns the resulting clusters as lists of original items. Distances are
    computed once per item pair ([distance] must be symmetric with zero
    self-distance). O(n^3) worst case — fine for the tens-to-hundreds of
    items Ditto clusters. *)

val agglomerative_k :
  ?linkage:linkage -> distance:('a -> 'a -> float) -> k:int -> 'a array -> 'a list list
(** Same, but stop when exactly [k] clusters remain (or fewer items). *)
