(** Online and batch statistics: means, variances, percentiles. *)

type summary = {
  count : int;
  mean : float;
  std : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val pp_summary : Format.formatter -> summary -> unit

type t
(** A sample accumulator that retains all observations (growable buffer),
    suitable for percentile computation on simulation-scale sample counts. *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val variance : t -> float
val std : t -> float
val percentile : t -> float -> float
(** [percentile t q] with [q] in [\[0,100\]]; linear interpolation between
    order statistics. Raises [Invalid_argument] on an empty accumulator. *)

val summary : t -> summary
val to_array : t -> float array
(** Copy of the observations in insertion order. *)

val clear : t -> unit

val mean_of : float list -> float
val percentile_of : float array -> float -> float
(** Batch percentile over an unsorted array (copies, does not mutate). *)

val mape : actual:float array -> predicted:float array -> float
(** Mean absolute percentage error, in percent; pairs with [actual = 0]
    are skipped. Arrays must have equal length. *)

val ks_distance : float array -> float array -> float
(** Two-sample Kolmogorov–Smirnov statistic: the supremum distance between
    the empirical CDFs, in [\[0, 1\]]. Used to compare whole latency
    distributions of original and clone rather than a few percentiles.
    Raises [Invalid_argument] if either sample is empty. *)
