(** Ordered labelled trees and the Zhang–Shasha tree edit distance.

    Ditto measures similarity between per-thread call graphs with tree-edit
    distance (§4.3.2, citing Bille's survey) before clustering threads. *)

type 'a tree = Node of 'a * 'a tree list

val node : 'a -> 'a tree list -> 'a tree
val leaf : 'a -> 'a tree
val size : 'a tree -> int
val depth : 'a tree -> int

val distance :
  ?cost_ins:('a -> float) ->
  ?cost_del:('a -> float) ->
  ?cost_sub:('a -> 'a -> float) ->
  'a tree ->
  'a tree ->
  float
(** Zhang–Shasha edit distance between two ordered trees. Default costs are
    1 for insert/delete and 0/1 for substitute (equal/unequal labels). *)

val normalized_distance : 'a tree -> 'a tree -> float
(** Distance divided by [max (size a) (size b)] — in [\[0, 1\]] for unit
    costs, used as the clustering metric. *)
