(** Minimal JSON values, printer and parser — enough to serialise Ditto
    profiles (the publicly shareable artefact) without external
    dependencies. Strings are assumed not to need exotic escapes beyond the
    JSON standard set; numbers are printed with enough digits to round-trip
    floats. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string

exception Parse_error of string
val of_string : string -> t
(** Raises {!Parse_error} on malformed input. *)

(** {1 Accessors} (raise [Parse_error] on shape mismatch) *)

val member : string -> t -> t
(** Field of an object; [Null] if absent. *)

val to_float : t -> float
val to_int : t -> int
val to_bool : t -> bool
val to_str : t -> string
val to_list : t -> t list

(** {1 Builders} *)

val int : int -> t
val pair : ('a -> t) -> ('b -> t) -> 'a * 'b -> t
val list : ('a -> t) -> 'a list -> t
