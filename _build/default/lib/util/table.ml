type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let render ?(align = Right) ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun a r -> max a (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row -> List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let line row =
    row
    |> List.mapi (fun i cell ->
           let a = if i = 0 then Left else align in
           pad a widths.(i) cell)
    |> String.concat "  "
  in
  let rule =
    Array.to_list widths |> List.map (fun w -> String.make w '-') |> String.concat "  "
  in
  String.concat "\n" (line header :: rule :: List.map line rows)

let print ?align ~title ~header rows =
  Printf.printf "\n== %s ==\n%s\n" title (render ?align ~header rows)

let fmt_float x =
  if x = 0.0 then "0"
  else begin
    let a = Float.abs x in
    if a >= 10000.0 || a < 0.001 then Printf.sprintf "%.3e" x
    else if a >= 100.0 then Printf.sprintf "%.1f" x
    else if a >= 10.0 then Printf.sprintf "%.2f" x
    else Printf.sprintf "%.3f" x
  end

let fmt_pct x = Printf.sprintf "%.1f%%" x
