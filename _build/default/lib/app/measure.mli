(** Measurement phase: execute request instruction streams on the simulated
    hardware to obtain (a) PMU-style counters and (b) per-request traces of
    on-CPU time and off-CPU operations.

    This is the simulation analogue of running the real binary under the
    profilers while the DES phase (see {!Service}) replays the traces under
    load to get queueing and latency — the split mirrors how the paper
    separates platform-independent body characteristics from load-dependent
    skeleton behaviour.

    Tiers colocated on the same machine interleave on its cores, so shared
    caches carry their combined footprint (Fig. 7's platform-C contention
    and Fig. 10's interference both come from this). *)

(** Off-CPU/On-CPU segments of one request, replayed by the DES phase. *)
type segment =
  | Cpu of float  (** on-CPU seconds (user + kernel) *)
  | Disk_read of { bytes : int; random : bool }
  | Disk_write of { bytes : int }
  | Sleep of float
  | Downstream of { target : string; req_bytes : int; resp_bytes : int }

type trace = segment list

type tier_result = {
  tier : Spec.tier;
  space : Layout.space;
  traces : trace array;  (** one per measured request *)
  background_trace : trace option;
  counters : Ditto_uarch.Counters.t;
  requests_measured : int;
  cpu_mean : float;  (** mean on-CPU seconds per request *)
}

val trace_cpu_seconds : trace -> float

type config = {
  warmup : int;  (** per-tier unrecorded requests before measurement *)
  syscall_scale : float;  (** kernel path-length scale (see {!Ditto_os.Syscall.Kernel}) *)
  idle_per_request : float;
      (** mean idle seconds between requests: drives timer/housekeeping
          pollution of i-cache and predictor (low-load frontend effects) *)
  interleave : int;  (** requests executed per tier before switching tiers *)
  stressor : (Ditto_util.Rng.t -> int -> Spec.op list) option;
      (** colocated interference stream *)
  stressor_placement : [ `Same_core | `Other_core ];
      (** [`Same_core] shares private caches (hyperthread sibling);
          [`Other_core] shares only the LLC and memory bandwidth *)
  smt_pressure : float;
      (** issue-width factor under SMT interference (1.0 = none) *)
}

val default_config : config

val run :
  ?config:config ->
  machine:Machine.t ->
  seed:int ->
  requests:int ->
  (Spec.tier * Layout.space) list ->
  tier_result list
(** Measure every tier hosted on [machine]. Counters and traces are
    attributed per tier even when tiers share cores. *)
