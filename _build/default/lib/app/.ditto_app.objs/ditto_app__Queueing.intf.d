lib/app/queueing.mli: Measure
