lib/app/machine.ml: Array Ditto_net Ditto_os Ditto_sim Ditto_storage Ditto_uarch
