lib/app/measure.mli: Ditto_uarch Ditto_util Layout Machine Spec
