lib/app/service.mli: Ditto_sim Ditto_util Machine Measure Spec
