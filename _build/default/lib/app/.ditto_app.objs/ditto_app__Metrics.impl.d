lib/app/metrics.ml: Counters Ditto_uarch Float List Printf
