lib/app/runner.ml: Counters Ditto_sim Ditto_uarch Ditto_util Float Layout List Machine Measure Metrics Platform Printf Service Spec
