lib/app/machine.mli: Ditto_net Ditto_os Ditto_sim Ditto_storage Ditto_uarch
