lib/app/layout.mli: Ditto_isa
