lib/app/layout.ml: Ditto_isa
