lib/app/runner.mli: Ditto_uarch Ditto_util Measure Metrics Service Spec
