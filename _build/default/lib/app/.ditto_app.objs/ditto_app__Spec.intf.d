lib/app/spec.mli: Ditto_isa Ditto_os Ditto_util
