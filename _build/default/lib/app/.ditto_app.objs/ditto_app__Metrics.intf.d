lib/app/metrics.mli: Ditto_uarch
