lib/app/queueing.ml: Array Float Measure
