lib/app/measure.ml: Array Core_model Counters Ditto_isa Ditto_os Ditto_uarch Ditto_util Float Hashtbl Layout List Machine Memory Page_cache Spec Syscall
