lib/app/service.ml: Array Ditto_net Ditto_os Ditto_sim Ditto_storage Ditto_util Engine Float Hashtbl List Machine Measure Nic Printf Queue Socket Spec
