lib/app/spec.ml: Ditto_isa Ditto_os Ditto_util List Printf
