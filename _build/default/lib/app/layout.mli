(** Virtual address-space layout for simulated tiers.

    Each tier gets disjoint code, heap, and shared-data windows so that
    colocated tiers interfere only through the shared cache levels, exactly
    as separate processes would. Kernel windows are owned by
    {!Ditto_os.Syscall.Kernel}. *)

type space = {
  tier_index : int;
  code_base : int;  (** base of the tier's text segment *)
  heap : Ditto_isa.Block.region;  (** private data *)
  shared : Ditto_isa.Block.region;  (** thread-shared data (coherence) *)
}

val space : tier_index:int -> heap_bytes:int -> shared_bytes:int -> space

val code_window : space -> index:int -> int
(** Address for the [index]-th 4KB code window inside the tier's text
    segment (distinct handler functions / synthetic blocks). *)

val sub_heap : space -> offset:int -> bytes:int -> Ditto_isa.Block.region
(** A private sub-region of the heap (e.g. a hash-table vs a value arena). *)

val max_tiers : int
