(** DES phase: serve load against measured request traces.

    Tiers run as processes with their profiled thread/network models
    (Fig. 3's skeleton): I/O-multiplexing workers on epoll sets, blocking
    thread-per-connection servers, or non-blocking pollers. Request work is
    replayed from {!Measure} traces — on-CPU segments contend on the
    scheduler, disk segments queue on the device, downstream RPC segments
    traverse sockets to other tiers. Latency distributions, achieved
    throughput and I/O bandwidth fall out of the simulation. *)

type load = {
  qps : float;  (** offered load *)
  connections : int;
  open_loop : bool;
      (** open loop (mutated/wrk2-style: arrivals never wait) vs closed
          loop (YCSB-style: one outstanding request per connection) *)
  duration : float;  (** simulated seconds of load *)
}

val load : ?connections:int -> ?open_loop:bool -> ?duration:float -> qps:float -> unit -> load

type tier_obs = {
  obs_name : string;
  obs_latency : Ditto_util.Stats.summary;  (** server-side per-request latency *)
  obs_requests : int;
  obs_net_mbps : float;  (** machine NIC bandwidth during the run *)
  obs_disk_mbps : float;
}

type result = {
  latency : Ditto_util.Stats.summary;  (** end-to-end, at the client *)
  latency_raw : float array;
  achieved_qps : float;
  completed : int;
  elapsed : float;
  tiers : tier_obs list;
}

val run :
  engine:Ditto_sim.Engine.t ->
  app:Spec.t ->
  placement:(string -> Machine.t) ->
  results:(string -> Measure.tier_result) ->
  seed:int ->
  ?net_interference_gbps:float ->
  load ->
  result
(** Serve [load] against the deployed app. [net_interference_gbps] runs an
    iperf-style competing stream through the entry machine's NIC (Fig. 10's
    network interference). *)
