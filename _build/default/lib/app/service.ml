open Ditto_sim
open Ditto_net
module Stats = Ditto_util.Stats
module Rng = Ditto_util.Rng
module Dist = Ditto_util.Dist

type load = { qps : float; connections : int; open_loop : bool; duration : float }

let load ?(connections = 16) ?(open_loop = true) ?(duration = 2.0) ~qps () =
  { qps; connections; open_loop; duration }

type tier_obs = {
  obs_name : string;
  obs_latency : Stats.summary;
  obs_requests : int;
  obs_net_mbps : float;
  obs_disk_mbps : float;
}

type result = {
  latency : Stats.summary;
  latency_raw : float array;
  achieved_qps : float;
  completed : int;
  elapsed : float;
  tiers : tier_obs list;
}

type tier_rt = {
  spec : Spec.tier;
  machine : Machine.t;
  mres : Measure.tier_result;
  rng : Rng.t;
  epolls : Socket.Epoll.t array;
  mutable epoll_rr : int;
  mutable poll_conns : Socket.endpoint list;
  pools : (string, Socket.endpoint Queue.t) Hashtbl.t;
  lat : Stats.t;
  mutable served : int;
  mutable stopped : bool;
}

let fresh_tid counter =
  incr counter;
  !counter

(* Serve one request whose bytes arrived at [arrived]: replay a measured
   trace (CPU, disk, sleeps, downstream RPCs) then send the response. *)
let rec handle registry tids rt ~tid ep ~arrived =
  let trace = rt.mres.Measure.traces.(Rng.int rt.rng (Array.length rt.mres.Measure.traces)) in
  replay registry tids rt ~tid trace;
  Socket.send ep ~bytes:rt.spec.Spec.response_bytes;
  Stats.add rt.lat (Engine.time () -. arrived);
  rt.served <- rt.served + 1

and replay registry tids rt ~tid trace =
  let pending = ref [] in
  List.iter
    (fun seg ->
      match seg with
      | Measure.Cpu s -> Ditto_os.Sched.run_oncpu rt.machine.Machine.sched ~thread:tid s
      | Measure.Disk_read { bytes; random } ->
          Ditto_storage.Disk.read rt.machine.Machine.disk ~bytes ~random
      | Measure.Disk_write { bytes } ->
          (* Buffered write: flushed in the background. *)
          Engine.fork (fun () -> Ditto_storage.Disk.write rt.machine.Machine.disk ~bytes)
      | Measure.Sleep s -> Engine.wait s
      | Measure.Downstream { target; req_bytes; resp_bytes } -> (
          match rt.spec.Spec.client_model with
          | Spec.Sync_client -> downstream registry tids rt ~tid target req_bytes resp_bytes
          | Spec.Async_client ->
              let iv = Engine.Ivar.create () in
              Engine.fork (fun () ->
                  downstream registry tids rt ~tid target req_bytes resp_bytes;
                  Engine.Ivar.fill iv ());
              pending := iv :: !pending))
    trace;
  List.iter Engine.Ivar.read !pending

and downstream registry tids rt ~tid target req_bytes _resp_bytes =
  ignore tid;
  let drt =
    match Hashtbl.find_opt registry target with
    | Some d -> d
    | None -> invalid_arg (Printf.sprintf "Service: unknown downstream tier %S" target)
  in
  let pool =
    match Hashtbl.find_opt rt.pools target with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.add rt.pools target q;
        q
  in
  let conn =
    match Queue.take_opt pool with Some c -> c | None -> connect registry tids rt drt
  in
  Socket.send conn ~bytes:req_bytes;
  ignore (Socket.recv conn);
  Queue.push conn pool

and connect registry tids rt drt =
  let same = rt.machine == drt.machine in
  let a_nic = if same then rt.machine.Machine.loopback else rt.machine.Machine.nic in
  let b_nic = if same then drt.machine.Machine.loopback else drt.machine.Machine.nic in
  let latency = if same then 5e-6 else 20e-6 in
  let client_ep, server_ep =
    Socket.pair rt.machine.Machine.engine ~a_nic ~b_nic ~latency
  in
  attach registry tids drt server_ep;
  client_ep

(* Register a new inbound connection according to the server's network and
   thread model. *)
and attach registry tids rt ep =
  match rt.spec.Spec.server_model with
  | Spec.Io_multiplexing ->
      Socket.Epoll.add rt.epolls.(rt.epoll_rr mod Array.length rt.epolls) ep;
      rt.epoll_rr <- rt.epoll_rr + 1
  | Spec.Blocking ->
      (* Thread-per-connection (spawned dynamically for services like
         MongoDB whose thread count follows the connection count). *)
      let tid = fresh_tid tids in
      Engine.fork (fun () -> blocking_loop registry tids rt ~tid ep)
  | Spec.Nonblocking -> rt.poll_conns <- ep :: rt.poll_conns

and blocking_loop registry tids rt ~tid ep =
  if not rt.stopped then begin
    let bytes, arrived = Socket.recv_timed ep in
    ignore bytes;
    handle registry tids rt ~tid ep ~arrived;
    blocking_loop registry tids rt ~tid ep
  end

let epoll_worker registry tids rt ~tid w =
  let rec loop () =
    if not rt.stopped then begin
      match Socket.Epoll.wait ~timeout:0.1 rt.epolls.(w) with
      | [] -> loop ()
      | ready ->
          List.iter
            (fun ep ->
              let rec drain () =
                match Socket.try_recv_timed ep with
                | Some (_, arrived) ->
                    handle registry tids rt ~tid ep ~arrived;
                    drain ()
                | None -> ()
              in
              drain ())
            ready;
          loop ()
    end
  in
  loop ()

let nonblocking_worker registry tids rt ~tid =
  let poll_interval = 20e-6 and poll_cpu = 1.5e-6 in
  let rec loop () =
    if not rt.stopped then begin
      let got = ref false in
      List.iter
        (fun ep ->
          match Socket.try_recv_timed ep with
          | Some (_, arrived) ->
              got := true;
              handle registry tids rt ~tid ep ~arrived
          | None -> ())
        rt.poll_conns;
      (* Polling burns CPU even when idle — the §4.3.1 caveat. *)
      Ditto_os.Sched.run_oncpu rt.machine.Machine.sched ~thread:tid poll_cpu;
      if not !got then Engine.wait poll_interval;
      loop ()
    end
  in
  loop ()

let background_thread rt ~tid period trace =
  let rec loop () =
    if not rt.stopped then begin
      Engine.wait period;
      List.iter
        (fun seg ->
          match seg with
          | Measure.Cpu s -> Ditto_os.Sched.run_oncpu rt.machine.Machine.sched ~thread:tid s
          | Measure.Disk_read { bytes; random } ->
              Ditto_storage.Disk.read rt.machine.Machine.disk ~bytes ~random
          | Measure.Disk_write { bytes } ->
              Engine.fork (fun () -> Ditto_storage.Disk.write rt.machine.Machine.disk ~bytes)
          | Measure.Sleep s -> Engine.wait s
          | Measure.Downstream _ -> ())
        trace;
      loop ()
    end
  in
  loop ()

let dedupe_machines rts =
  List.fold_left
    (fun acc rt -> if List.exists (fun m -> m == rt.machine) acc then acc else rt.machine :: acc)
    [] rts

let run ~engine ~(app : Spec.t) ~placement ~results ~seed ?(net_interference_gbps = 0.0) l =
  let registry : (string, tier_rt) Hashtbl.t = Hashtbl.create 8 in
  let tids = ref 0 in
  let root = Rng.create seed in
  let rts =
    List.map
      (fun (tier : Spec.tier) ->
        let rt =
          {
            spec = tier;
            machine = placement tier.Spec.tier_name;
            mres = results tier.Spec.tier_name;
            rng = Rng.split root;
            epolls =
              Array.init (max 1 tier.Spec.thread_model.Spec.workers) (fun _ ->
                  Socket.Epoll.create ());
            epoll_rr = 0;
            poll_conns = [];
            pools = Hashtbl.create 4;
            lat = Stats.create ();
            served = 0;
            stopped = false;
          }
        in
        Hashtbl.add registry tier.Spec.tier_name rt;
        rt)
      app.Spec.tiers
  in
  (* Spawn server workers. *)
  List.iter
    (fun rt ->
      (match rt.spec.Spec.server_model with
      | Spec.Io_multiplexing ->
          Array.iteri
            (fun w _ ->
              let tid = fresh_tid tids in
              Engine.spawn engine (fun () -> epoll_worker registry tids rt ~tid w))
            rt.epolls
      | Spec.Nonblocking ->
          for _ = 1 to max 1 rt.spec.Spec.thread_model.Spec.workers do
            let tid = fresh_tid tids in
            Engine.spawn engine (fun () -> nonblocking_worker registry tids rt ~tid)
          done
      | Spec.Blocking -> (* threads spawn per connection in [attach] *) ());
      match (rt.mres.Measure.background_trace, rt.spec.Spec.thread_model.Spec.background) with
      | Some trace, bgs ->
          List.iter
            (fun (_, period) ->
              let tid = fresh_tid tids in
              Engine.spawn engine (fun () -> background_thread rt ~tid period trace))
            bgs
      | None, _ -> ())
    rts;
  let entry = Hashtbl.find registry app.Spec.entry in
  let machines = dedupe_machines rts in
  let nic_before =
    List.map
      (fun m -> Nic.bytes_sent m.Machine.nic + Nic.bytes_received m.Machine.nic)
      machines
  in
  let disk_before =
    List.map
      (fun m ->
        Ditto_storage.Disk.bytes_read m.Machine.disk
        + Ditto_storage.Disk.bytes_written m.Machine.disk)
      machines
  in
  (* Client connections (the load generator is its own machine). *)
  let client_nic = Nic.create engine ~gbps:40.0 in
  let conns =
    Array.init (max 1 l.connections) (fun _ ->
        let a, b =
          Socket.pair engine ~a_nic:client_nic ~b_nic:entry.machine.Machine.nic ~latency:20e-6
        in
        Engine.spawn engine (fun () -> attach registry tids entry b);
        (a, Engine.Resource.create 1))
  in
  let t_start = Engine.now engine in
  let t_end = t_start +. l.duration in
  let lat = Stats.create () in
  let completed = ref 0 in
  let gen_rng = Rng.split root in
  let do_request ci =
    (* The clock starts at submission: open-loop latency must include any
       wait for a free connection (coordinated-omission correction, as in
       wrk2/mutated). *)
    let t0 = Engine.time () in
    let conn, mutex = conns.(ci) in
    Engine.Resource.with_resource mutex (fun () ->
        Socket.send conn ~bytes:entry.spec.Spec.request_bytes;
        ignore (Socket.recv conn);
        Stats.add lat (Engine.time () -. t0);
        incr completed)
  in
  if l.open_loop then
    Engine.spawn engine (fun () ->
        let i = ref 0 in
        while Engine.time () < t_end do
          Engine.wait (Dist.exponential gen_rng ~mean:(1.0 /. l.qps));
          let ci = !i mod Array.length conns in
          incr i;
          Engine.fork (fun () -> do_request ci)
        done)
  else begin
    (* Closed loop with rate throttling (YCSB-style: one outstanding request
       per connection; late responses eat into the think gap). *)
    let per_conn_mean = float_of_int (Array.length conns) /. l.qps in
    Array.iteri
      (fun ci _ ->
        Engine.spawn engine (fun () ->
            let next = ref (Engine.time ()) in
            while Engine.time () < t_end do
              next := !next +. Dist.exponential gen_rng ~mean:per_conn_mean;
              let now = Engine.time () in
              if !next > now then Engine.wait (!next -. now);
              if Engine.time () < t_end then do_request ci
            done))
      conns
  end;
  (* iperf-style competing stream through the entry machine's NIC. *)
  if net_interference_gbps > 0.0 then begin
    let chunk = 65536 in
    let interval = float_of_int (chunk * 8) /. (net_interference_gbps *. 1e9) in
    Engine.spawn engine (fun () ->
        while Engine.time () < t_end do
          let t0 = Engine.time () in
          Nic.transmit entry.machine.Machine.nic ~bytes:chunk;
          let used = Engine.time () -. t0 in
          if used < interval then Engine.wait (interval -. used)
        done)
  end;
  Engine.run ~until:(t_end +. 0.5) engine;
  List.iter (fun rt -> rt.stopped <- true) rts;
  let elapsed = Float.max 1e-9 (Float.min (Engine.now engine) t_end -. t_start) in
  let mbps before now = float_of_int (now - before) /. elapsed /. 1e6 in
  let tiers =
    List.map
      (fun rt ->
        let m = rt.machine in
        let nic_now = Nic.bytes_sent m.Machine.nic + Nic.bytes_received m.Machine.nic in
        let disk_now =
          Ditto_storage.Disk.bytes_read m.Machine.disk
          + Ditto_storage.Disk.bytes_written m.Machine.disk
        in
        let idx =
          let rec find i = function
            | [] -> 0
            | mm :: rest -> if mm == m then i else find (i + 1) rest
          in
          find 0 machines
        in
        {
          obs_name = rt.spec.Spec.tier_name;
          obs_latency = Stats.summary rt.lat;
          obs_requests = rt.served;
          obs_net_mbps = mbps (List.nth nic_before idx) nic_now;
          obs_disk_mbps = mbps (List.nth disk_before idx) disk_now;
        })
      rts
  in
  {
    latency = Stats.summary lat;
    latency_raw = Stats.to_array lat;
    achieved_qps = float_of_int !completed /. elapsed;
    completed = !completed;
    elapsed;
    tiers;
  }
