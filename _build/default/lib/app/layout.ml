type space = {
  tier_index : int;
  code_base : int;
  heap : Ditto_isa.Block.region;
  shared : Ditto_isa.Block.region;
}

let max_tiers = 48
let code_region_base = 0x1000_0000
let code_stride = 0x0100_0000 (* 16MB of text per tier *)
let heap_region_base = 0x8000_0000
let heap_stride = 0x2000_0000 (* 512MB window per tier *)

let space ~tier_index ~heap_bytes ~shared_bytes =
  assert (tier_index >= 0 && tier_index < max_tiers);
  let heap_base = heap_region_base + (tier_index * heap_stride) in
  let shared_base = heap_base + (heap_stride / 2) in
  {
    tier_index;
    code_base = code_region_base + (tier_index * code_stride);
    heap = Ditto_isa.Block.make_region ~base:heap_base ~bytes:heap_bytes ~shared:false;
    shared =
      Ditto_isa.Block.make_region ~base:shared_base ~bytes:(max 64 shared_bytes) ~shared:true;
  }

let code_window t ~index = t.code_base + (index * 4096)

let sub_heap t ~offset ~bytes =
  assert (offset + bytes <= t.heap.Ditto_isa.Block.region_bytes);
  Ditto_isa.Block.make_region
    ~base:(t.heap.Ditto_isa.Block.region_base + offset)
    ~bytes ~shared:false
