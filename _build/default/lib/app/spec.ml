type op =
  | Compute of Ditto_isa.Block.t * int
  | Syscall of Ditto_os.Syscall.kind
  | File_read of { offset : int; bytes : int; random : bool }
  | File_write of { bytes : int }
  | Call of { target : string; req_bytes : int; resp_bytes : int }

type server_model = Blocking | Nonblocking | Io_multiplexing
type client_model = Sync_client | Async_client

type thread_model = {
  workers : int;
  dynamic_threads : bool;
  background : (string * float) list;
}

type tier = {
  tier_name : string;
  server_model : server_model;
  client_model : client_model;
  thread_model : thread_model;
  handler : Ditto_util.Rng.t -> int -> op list;
  background_handler : (Ditto_util.Rng.t -> op list) option;
  request_bytes : int;
  response_bytes : int;
  heap_bytes : int;
  shared_bytes : int;
  file_bytes : int;
}

let tier ?(server_model = Io_multiplexing) ?(client_model = Sync_client) ?(workers = 4)
    ?(dynamic_threads = false) ?(background = []) ?background_handler ?(request_bytes = 128)
    ?(response_bytes = 512) ?(heap_bytes = 16 * 1024 * 1024) ?(shared_bytes = 1024 * 1024)
    ?(file_bytes = 0) ~name ~handler () =
  {
    tier_name = name;
    server_model;
    client_model;
    thread_model = { workers; dynamic_threads; background };
    handler;
    background_handler;
    request_bytes;
    response_bytes;
    heap_bytes;
    shared_bytes;
    file_bytes;
  }

type t = {
  app_name : string;
  tiers : tier list;
  entry : string;
  page_cache_hint : int option;
}

let make ~name ?entry ?page_cache_hint tiers =
  match tiers with
  | [] -> invalid_arg "Spec.make: no tiers"
  | first :: _ ->
      let entry = match entry with Some e -> e | None -> first.tier_name in
      { app_name = name; tiers; entry; page_cache_hint }

let find_tier t name =
  match List.find_opt (fun tier -> tier.tier_name = name) t.tiers with
  | Some tier -> tier
  | None -> invalid_arg (Printf.sprintf "Spec.find_tier: unknown tier %S" name)

let is_microservice t = List.length t.tiers > 1

let server_model_name = function
  | Blocking -> "blocking"
  | Nonblocking -> "non-blocking"
  | Io_multiplexing -> "io-multiplexing"

let client_model_name = function
  | Sync_client -> "synchronous"
  | Async_client -> "asynchronous"
