type t = {
  engine : Ditto_sim.Engine.t;
  platform : Ditto_uarch.Platform.t;
  mem : Ditto_uarch.Memory.t;
  cores : Ditto_uarch.Core_model.t array;
  sched : Ditto_os.Sched.t;
  nic : Ditto_net.Nic.t;
  loopback : Ditto_net.Nic.t;
  disk : Ditto_storage.Disk.t;
  page_cache : Ditto_os.Page_cache.t;
}

let create ?page_cache_bytes ?cores engine (platform : Ditto_uarch.Platform.t) =
  let ncores = match cores with Some n -> n | None -> platform.Ditto_uarch.Platform.cores in
  let mem = Ditto_uarch.Memory.create platform ~ncores in
  let page_cache_bytes =
    match page_cache_bytes with
    | Some b -> b
    | None -> platform.Ditto_uarch.Platform.ram_gb * 1024 * 1024 * 1024 / 4
  in
  {
    engine;
    platform;
    mem;
    cores = Array.init ncores (fun core -> Ditto_uarch.Core_model.create mem ~core);
    sched = Ditto_os.Sched.create engine ~ncores ();
    nic = Ditto_net.Nic.create engine ~gbps:platform.Ditto_uarch.Platform.net_gbps;
    loopback = Ditto_net.Nic.create engine ~gbps:400.0;
    disk = Ditto_storage.Disk.create engine platform.Ditto_uarch.Platform.disk;
    page_cache = Ditto_os.Page_cache.create ~capacity_bytes:page_cache_bytes;
  }

let ncores t = Array.length t.cores

let cycles_to_seconds t cycles =
  cycles /. (t.platform.Ditto_uarch.Platform.freq_ghz *. 1e9)
