(* Clone a 22-tier microservice topology through distributed traces.

     dune exec examples/clone_social_network.exe

   The Social Network's RPC dependency graph is recovered from sampled
   Jaeger-style spans, each tier is profiled and cloned, and the synthetic
   graph is validated end to end — the paper's headline use case. *)

open Ditto_app
module Pipeline = Ditto_core.Pipeline
module Platform = Ditto_uarch.Platform

let () =
  let original = Ditto_apps.Social_network.spec () in
  let load = Service.load ~qps:800.0 ~duration:1.0 () in

  Printf.printf "Cloning %s (%d tiers) ...\n%!" original.Spec.app_name
    (List.length original.Spec.tiers);
  let result = Pipeline.clone ~tune:false ~platform:Platform.a ~load original in

  (* The recovered topology — compare with Fig. 3's DAG. *)
  (match result.Pipeline.dag with
  | Some dag -> Format.printf "@.Recovered RPC dependency graph:@.%a@." Ditto_trace.Dag.pp dag
  | None -> prerr_endline "expected a DAG");

  (* End-to-end latency with every tier replaced by its clone (Fig. 6). *)
  let rows =
    List.map
      (fun qps ->
        let load = Service.load ~qps ~duration:0.8 () in
        let c =
          Pipeline.validate ~platform:Platform.a ~load
            ~label:(Printf.sprintf "%.0f qps" qps)
            result
        in
        let a = c.Pipeline.actual_end_to_end and s = c.Pipeline.synthetic_end_to_end in
        let ms x = Printf.sprintf "%.3f" (1e3 *. x) in
        [
          Printf.sprintf "%.0f" qps;
          ms a.Ditto_util.Stats.p50; ms s.Ditto_util.Stats.p50;
          ms a.Ditto_util.Stats.p99; ms s.Ditto_util.Stats.p99;
        ])
      [ 200.; 500.; 1000. ]
  in
  Ditto_util.Table.print ~title:"end-to-end latency (ms): original vs full synthetic graph"
    ~header:[ "QPS"; "act p50"; "syn p50"; "act p99"; "syn p99" ]
    rows
