(* Power-management what-if study on a clone (the Fig. 11 use case):
   can a provider shrink cores or frequency and still meet a 1ms QoS —
   decided *without access to the original's source*, using only its
   synthetic clone.

     dune exec examples/capacity_planning.exe *)

open Ditto_app
module Pipeline = Ditto_core.Pipeline
module Platform = Ditto_uarch.Platform

let qos = 1e-3

let () =
  let original = Ditto_apps.Memcached.spec () in
  let load = Service.load ~qps:180_000.0 ~connections:96 ~duration:0.5 () in
  Printf.printf "Cloning memcached for a capacity study ...\n%!";
  let result = Pipeline.clone ~platform:Platform.a ~load original in

  let p99 ~cores ~freq =
    let plat = Platform.with_frequency Platform.a freq in
    let c =
      Pipeline.validate
        ~config_of:(fun p -> Runner.config ~cores ~requests:140 p)
        ~platform:plat ~load
        ~label:(Printf.sprintf "%dc@%.1fGHz" cores freq)
        result
    in
    (* The study runs on the clone only — the provider never re-runs the
       original; we compute it here just to report fidelity. *)
    ( c.Pipeline.synthetic_end_to_end.Ditto_util.Stats.p99,
      c.Pipeline.actual_end_to_end.Ditto_util.Stats.p99 )
  in
  let rows =
    List.map
      (fun freq ->
        Printf.sprintf "%.1fGHz" freq
        :: List.map
             (fun cores ->
               let syn, act = p99 ~cores ~freq in
               let mark x = if x > qos then "X" else Printf.sprintf "%.2f" (1e3 *. x) in
               Printf.sprintf "%s (%s)" (mark syn) (mark act))
             [ 4; 8; 12; 16 ])
      [ 2.1; 1.7; 1.3 ]
  in
  Ditto_util.Table.print
    ~title:"clone-predicted p99 ms (original in parens); X = 1ms QoS violated"
    ~header:[ "freq \\ cores"; "4"; "8"; "12"; "16" ]
    rows;
  print_endline
    "\nA provider can pick the cheapest (cores, frequency) cell that meets QoS\n\
     from the synthetic column alone.";
