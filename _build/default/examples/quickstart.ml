(* Quickstart: clone a service end to end and validate the clone.

     dune exec examples/quickstart.exe

   This walks the whole Ditto pipeline on the Redis model service:
   1. run the original at medium load (profiling run),
   2. profile skeleton + body, generate a synthetic clone, fine-tune it,
   3. run original and clone side by side and compare their metrics. *)

open Ditto_app
module Pipeline = Ditto_core.Pipeline
module Platform = Ditto_uarch.Platform

let () =
  (* The original service. Any Spec.t works here — the pipeline only sees
     its runtime behaviour, never its definition. *)
  let original = Ditto_apps.Redis.spec () in

  (* Profile at medium load (the paper profiles one load and validates on
     all others). YCSB drives Redis closed-loop. *)
  let load = Service.load ~qps:35_000.0 ~open_loop:false ~duration:1.0 () in

  Printf.printf "Cloning %s ...\n%!" original.Spec.app_name;
  let result = Pipeline.clone ~platform:Platform.a ~load original in

  (match result.Pipeline.tuning with
  | Some report ->
      Printf.printf "fine tuning: %d iterations, converged=%b\n"
        (List.length report.Ditto_tune.Tuner.iterations)
        report.Ditto_tune.Tuner.converged;
      List.iter
        (fun (tier, params) ->
          Format.printf "  %s knobs: %a@." tier Ditto_gen.Params.pp params)
        report.Ditto_tune.Tuner.final_params
  | None -> ());

  (* Print the shareable profile — the only artefact that would leave the
     original owner's hands. *)
  List.iter
    (fun tp -> Format.printf "%a@." Ditto_profile.Tier_profile.pp tp)
    result.Pipeline.profile.Ditto_profile.Tier_profile.tiers;

  (* Validate: fresh identical environments for original and clone. *)
  let c = Pipeline.validate ~platform:Platform.a ~load ~label:"medium" result in
  let actual = List.assoc "redis" c.Pipeline.actual in
  let synth = List.assoc "redis" c.Pipeline.synthetic in
  Ditto_util.Table.print ~title:"original vs clone (medium load, platform A)"
    ~header:Metrics.header
    [
      "actual" :: List.tl (Metrics.pp_row actual);
      "synthetic" :: List.tl (Metrics.pp_row synth);
    ];
  Printf.printf "\nper-metric errors:\n";
  List.iter
    (fun (axis, e) -> Printf.printf "  %-8s %5.1f%%\n" axis e)
    (Metrics.error_pct ~actual ~synthetic:synth)
