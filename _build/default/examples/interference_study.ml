(* Interference sensitivity study on a clone (the Fig. 10 use case):
   does the clone react to cache/network antagonists the way the original
   does, even though it was profiled in isolation?

     dune exec examples/interference_study.exe *)

open Ditto_app
module Pipeline = Ditto_core.Pipeline
module Platform = Ditto_uarch.Platform

let () =
  let original = Ditto_apps.Nginx.spec () in
  let load = Service.load ~qps:25_000.0 ~connections:48 ~duration:0.6 () in
  Printf.printf "Cloning nginx for an interference study ...\n%!";
  let result = Pipeline.clone ~platform:Platform.a ~load original in

  let scenarios =
    [
      ("isolated", fun p -> Runner.config p);
      ( "HT sibling",
        fun p ->
          Runner.config ~stressor:Ditto_apps.Stressors.cpu_spin ~stressor_placement:`Same_core
            ~smt_pressure:0.55 p );
      ( "L2 thrash",
        fun p ->
          Runner.config ~stressor:Ditto_apps.Stressors.l2 ~stressor_placement:`Same_core
            ~smt_pressure:0.8 p );
      ( "LLC stream",
        fun p ->
          Runner.config ~stressor:Ditto_apps.Stressors.llc ~stressor_placement:`Other_core p );
    ]
  in
  let rows =
    List.concat_map
      (fun (label, config_of) ->
        let c = Pipeline.validate ~config_of ~platform:Platform.a ~load ~label result in
        let row who (m : Metrics.t) =
          [
            Printf.sprintf "%s/%s" label who;
            Printf.sprintf "%.3f" m.Metrics.ipc;
            Printf.sprintf "%.2f%%" (100. *. m.Metrics.l2_miss_rate);
            Printf.sprintf "%.2f%%" (100. *. m.Metrics.llc_miss_rate);
            Printf.sprintf "%.3f" (1e3 *. m.Metrics.lat_p99);
          ]
        in
        [
          row "actual" (List.assoc "nginx" c.Pipeline.actual);
          row "clone" (List.assoc "nginx" c.Pipeline.synthetic);
        ])
      scenarios
  in
  Ditto_util.Table.print
    ~title:"nginx under antagonists: the clone moves with the original"
    ~header:[ "scenario"; "IPC"; "L2 miss"; "LLC miss"; "p99 ms" ]
    rows
