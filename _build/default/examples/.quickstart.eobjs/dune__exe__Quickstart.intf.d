examples/quickstart.mli:
