examples/clone_social_network.ml: Ditto_app Ditto_apps Ditto_core Ditto_trace Ditto_uarch Ditto_util Format List Printf Service Spec
