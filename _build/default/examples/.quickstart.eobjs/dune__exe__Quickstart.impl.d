examples/quickstart.ml: Ditto_app Ditto_apps Ditto_core Ditto_gen Ditto_profile Ditto_tune Ditto_uarch Ditto_util Format List Metrics Printf Service Spec
