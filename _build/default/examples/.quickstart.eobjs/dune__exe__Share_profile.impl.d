examples/share_profile.ml: Ditto_app Ditto_apps Ditto_core Ditto_gen Ditto_profile Ditto_uarch Ditto_util Filename List Metrics Printf Runner Service Spec Unix
