examples/capacity_planning.ml: Ditto_app Ditto_apps Ditto_core Ditto_uarch Ditto_util List Printf Runner Service
