examples/share_profile.mli:
