examples/interference_study.mli:
