examples/clone_social_network.mli:
