examples/interference_study.ml: Ditto_app Ditto_apps Ditto_core Ditto_uarch Ditto_util List Metrics Printf Runner Service
