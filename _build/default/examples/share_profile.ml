(* The sharing workflow the paper is built around (§4.1, §7.2): a provider
   profiles a production service and ships ONLY the profile file; a vendor
   or researcher regenerates and runs the synthetic clone from that file,
   never seeing code, data, or addresses of the original.

     dune exec examples/share_profile.exe

   The two halves below would normally run in different organisations. *)

open Ditto_app
module Pipeline = Ditto_core.Pipeline
module Platform = Ditto_uarch.Platform

let profile_path = Filename.temp_file "mongodb" ".ditto.json"

(* --- Provider side: profile and export ------------------------------- *)

let provider () =
  let original = Ditto_apps.Mongodb.spec () in
  let load = Service.load ~qps:900.0 ~open_loop:false ~duration:0.8 () in
  let result = Pipeline.clone ~platform:Platform.a ~load original in
  Ditto_profile.Profile_io.save profile_path result.Pipeline.profile;
  Printf.printf "provider: wrote %s (%d bytes)\n%!" profile_path
    (Unix.stat profile_path).Unix.st_size;
  (* what the provider can check before shipping: the file holds only
     distributions (counts, histograms, rates) — grep it yourself. *)
  result

(* --- Consumer side: import and regenerate ---------------------------- *)

let consumer () =
  let profile = Ditto_profile.Profile_io.load profile_path in
  let clone = Ditto_gen.Clone.synth_app profile in
  Printf.printf "consumer: regenerated %s with %d tier(s)\n%!" clone.Spec.app_name
    (List.length clone.Spec.tiers);
  (* Run the clone on whatever platform the consumer cares about. *)
  let load = Service.load ~qps:900.0 ~open_loop:false ~duration:0.8 () in
  let out = Runner.run (Runner.config Platform.b) ~load clone in
  Ditto_util.Table.print ~title:"clone on consumer hardware (platform B)"
    ~header:Metrics.header
    (List.map (fun (_, m) -> Metrics.pp_row m) out.Runner.per_tier);
  (* Or export its memory trace for a trace-driven simulator (Ramulator). *)
  let trace_path = Filename.temp_file "mongodb" ".trace" in
  let n =
    Ditto_gen.Trace_export.save ~path:trace_path
      ~tier:(List.hd clone.Spec.tiers)
      ~requests:20 ~seed:3 ~max_accesses:50_000 ()
  in
  Printf.printf "consumer: exported %d memory accesses to %s\n" n trace_path

let () =
  let provider_result = provider () in
  consumer ();
  (* Sanity: the round-tripped profile regenerates the same clone. *)
  let reloaded = Ditto_profile.Profile_io.load profile_path in
  let a = Ditto_gen.Clone.synth_app provider_result.Pipeline.profile in
  let b = Ditto_gen.Clone.synth_app reloaded in
  Printf.printf "round-trip: tier counts %d = %d\n"
    (List.length a.Spec.tiers) (List.length b.Spec.tiers)
